package rmi

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
)

func TestInvokeAfterCloseErrors(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum", Method: "sum", IgnoreRet: true,
		ArgPlans: []*serial.Plan{e.listPlan("t.sum", true, false)},
	})
	e.c.Close()
	if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(2))}); err == nil {
		t.Fatal("invoke after close succeeded")
	}
	// Idempotent close.
	e.c.Close()
}

func TestCloseUnblocksPendingCallers(t *testing.T) {
	e := newEnv(t, 2)
	block := make(chan struct{})
	svc := &Service{Name: "Slow", Methods: map[string]Method{
		"wait": func(call *Call, args []model.Value) []model.Value {
			<-block
			return nil
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.wait", Method: "wait", IgnoreRet: true})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cs.Invoke(e.c.Node(0), ref, nil)
			errs <- err
		}()
	}
	// Give the calls time to be in flight, then tear the cluster down;
	// every caller must unblock with an error rather than hang.
	for e.c.Counters.Snapshot().RemoteRPCs < 4 {
	}
	e.c.Close()
	close(block)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("pending invoke returned success after close")
		}
	}
}

func TestLocalInvokeClassModeReturnsCloned(t *testing.T) {
	// Class-mode local call with a used return: the serializer clone
	// path must still produce isolated copies.
	e := newEnv(t, 1)
	n0 := e.c.Node(0)
	ref := n0.Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelClass, SiteSpec{Name: "t.mut", Method: "mutate", NumRet: 1})
	head := e.makeList(2)
	rets, err := cs.Invoke(n0, ref, []model.Value{model.Ref(head)})
	if err != nil {
		t.Fatal(err)
	}
	if head.Get("v").I == -1 || rets[0].O == head {
		t.Fatal("class-mode local call broke cloning semantics")
	}
}

func TestCloseCompletesInFlightFutures(t *testing.T) {
	// A future whose call is parked at the callee when the cluster goes
	// down must complete with ErrClusterClosed rather than hang its
	// eventual waiter.
	e := newEnv(t, 2)
	block := make(chan struct{})
	defer close(block)
	svc := &Service{Name: "Slow", Methods: map[string]Method{
		"wait": func(call *Call, args []model.Value) []model.Value {
			<-block
			return nil
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.fwait", Method: "wait", IgnoreRet: true})

	f := cs.InvokeAsync(e.c.Node(0), ref, nil, AsyncOpts{})
	errc := make(chan error, 1)
	go func() { errc <- f.Err() }()
	for e.c.Counters.Snapshot().RemoteRPCs < 1 {
	}
	e.c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("future resolved successfully across Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not complete the in-flight future")
	}
}

func TestCloseUnparksPipelinedCalls(t *testing.T) {
	// A pipelined call parked on an unresolved promise must unblock on
	// Close: the promise table is failed, the parked executor rejects,
	// and the caller's future completes with an error instead of
	// extending shutdown indefinitely.
	e := newEnv(t, 2)
	gate := make(chan struct{})
	defer close(gate)
	var execs atomic.Int64
	ref := pipelineEnv(t, e.c, gate, &execs)
	slow := pipeSite(t, e.c, "slow")
	bump := pipeSite(t, e.c, "bump")

	f1 := slow.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(1)}, AsyncOpts{Promised: true})
	f2 := bump.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
		Promises: []PromiseArg{{Arg: 0, Fut: f1}},
	})
	errc := make(chan error, 1)
	go func() { errc <- f2.Err() }()
	deadline := time.Now().Add(5 * time.Second)
	for e.c.Counters.PromiseParks.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dependent call never parked")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { e.c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a parked pipelined call")
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("parked pipelined call resolved successfully across Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked pipelined call never completed after Close")
	}
}
