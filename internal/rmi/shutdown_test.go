package rmi

import (
	"sync"
	"testing"

	"cormi/internal/model"
	"cormi/internal/serial"
)

func TestInvokeAfterCloseErrors(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum", Method: "sum", IgnoreRet: true,
		ArgPlans: []*serial.Plan{e.listPlan("t.sum", true, false)},
	})
	e.c.Close()
	if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(2))}); err == nil {
		t.Fatal("invoke after close succeeded")
	}
	// Idempotent close.
	e.c.Close()
}

func TestCloseUnblocksPendingCallers(t *testing.T) {
	e := newEnv(t, 2)
	block := make(chan struct{})
	svc := &Service{Name: "Slow", Methods: map[string]Method{
		"wait": func(call *Call, args []model.Value) []model.Value {
			<-block
			return nil
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.wait", Method: "wait", IgnoreRet: true})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cs.Invoke(e.c.Node(0), ref, nil)
			errs <- err
		}()
	}
	// Give the calls time to be in flight, then tear the cluster down;
	// every caller must unblock with an error rather than hang.
	for e.c.Counters.Snapshot().RemoteRPCs < 4 {
	}
	e.c.Close()
	close(block)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("pending invoke returned success after close")
		}
	}
}

func TestLocalInvokeClassModeReturnsCloned(t *testing.T) {
	// Class-mode local call with a used return: the serializer clone
	// path must still produce isolated copies.
	e := newEnv(t, 1)
	n0 := e.c.Node(0)
	ref := n0.Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelClass, SiteSpec{Name: "t.mut", Method: "mutate", NumRet: 1})
	head := e.makeList(2)
	rets, err := cs.Invoke(n0, ref, []model.Value{model.Ref(head)})
	if err != nil {
		t.Fatal(err)
	}
	if head.Get("v").I == -1 || rets[0].O == head {
		t.Fatal("class-mode local call broke cloning semantics")
	}
}
