package rmi

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/trace"
	"cormi/internal/transport"
)

// syncBuffer is a mutex-guarded dump sink: the callee writes failure
// dumps from its own goroutine, concurrently with the test reading.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// waitDump polls until the sink holds a complete JSON document.
func (b *syncBuffer) waitDump(t *testing.T) []byte {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d := b.Bytes(); len(d) > 0 && json.Valid(d) {
			return d
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no flight-recorder dump arrived")
	return nil
}

// spansFor filters the flight recorder to one call id.
func spansFor(recs []trace.SpanRecord, seq int64) (caller, callee *trace.SpanRecord) {
	for i := range recs {
		r := &recs[i]
		if r.Seq != seq {
			continue
		}
		if r.Kind == trace.KindCaller {
			caller = r
		} else {
			callee = r
		}
	}
	return caller, callee
}

func TestTracedCallProducesBothSpans(t *testing.T) {
	tr := trace.New(trace.Config{RingSize: 64})
	e := newEnv(t, 2, WithTracer(tr))
	if e.c.Tracer() != tr {
		t.Fatal("Tracer() accessor did not return the attached tracer")
	}
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	out, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(41)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 42 {
		t.Fatalf("result = %d, want 42", out[0].I)
	}

	recs := tr.Recent()
	if len(recs) != 2 {
		t.Fatalf("flight recorder holds %d spans, want 2 (caller+callee)", len(recs))
	}
	caller, callee := spansFor(recs, 1)
	if caller == nil || callee == nil {
		t.Fatalf("missing span half: caller=%v callee=%v", caller, callee)
	}
	if caller.Site != "t.bump.1" || callee.Site != "t.bump.1" {
		t.Errorf("sites = %q/%q, want t.bump.1", caller.Site, callee.Site)
	}
	if caller.From != 0 || caller.To != 1 || callee.From != 0 || callee.To != 1 {
		t.Errorf("endpoints: caller %d→%d callee %d→%d, want 0→1 both",
			caller.From, caller.To, callee.From, callee.To)
	}
	if caller.Err != "" || callee.Err != "" {
		t.Errorf("unexpected errors: %q / %q", caller.Err, callee.Err)
	}

	// The halves must carry their respective phases.
	for _, p := range []trace.Phase{
		trace.PhaseSerialize, trace.PhaseSend, trace.PhaseWaitReply,
		trace.PhaseReplyDeserialize,
	} {
		if caller.PhaseDur[p] <= 0 {
			t.Errorf("caller phase %s not recorded", p)
		}
	}
	for _, p := range []trace.Phase{
		trace.PhasePlanLookup, trace.PhaseTransit, trace.PhaseDispatch,
		trace.PhaseDeserialize, trace.PhaseExecute, trace.PhaseReplySerialize,
	} {
		if callee.PhaseDur[p] <= 0 {
			t.Errorf("callee phase %s not recorded", p)
		}
	}
	// Reply transit needs the reply packet's wall timestamps.
	if caller.PhaseDur[trace.PhaseReplyTransit] <= 0 {
		t.Error("caller reply_transit not recorded (reply wall timestamps lost)")
	}
	if callee.VirtualTransitNS <= 0 {
		t.Error("callee virtual transit not recorded")
	}

	// Histograms summarize the same call.
	stats := tr.PhaseStats()
	if len(stats) == 0 {
		t.Fatal("PhaseStats empty after a traced call")
	}
	var sawExecute bool
	for _, s := range stats {
		if s.Site != "t.bump.1" {
			t.Errorf("unexpected site %q in stats", s.Site)
		}
		if s.Phase == "execute" {
			sawExecute = true
			if s.Count != 1 || s.P50NS <= 0 {
				t.Errorf("execute stat = %+v, want count 1 and positive p50", s)
			}
		}
	}
	if !sawExecute {
		t.Error("no execute phase in PhaseStats")
	}
}

func TestUntracedClusterRecordsNothing(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if e.c.Tracer() != nil {
		t.Fatal("untraced cluster has a tracer")
	}
}

func TestTimeoutDumpsFlightRecorder(t *testing.T) {
	// Drop every reply 1→0: the call times out, and the tracer must
	// auto-dump a Chrome trace containing the failing call's spans.
	var dump syncBuffer
	tr := trace.New(trace.Config{RingSize: 64, FailureDump: &dump})
	e := newEnv(t, 2,
		WithTracer(tr),
		WithFaults(transport.FaultConfig{
			Seed:  3,
			Pairs: map[[2]int]transport.FaultRates{{1, 0}: {Drop: 1}},
		}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	pol := CallPolicy{Timeout: 15 * time.Millisecond, Retries: 2, Backoff: time.Millisecond}
	_, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(7)}, pol)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}

	raw := dump.waitDump(t)
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("dump is not valid Chrome-trace JSON: %v", err)
	}
	if parsed.OtherData["reason"] != "timeout" {
		t.Errorf("dump reason = %q, want timeout", parsed.OtherData["reason"])
	}
	var sawFailing bool
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "t.bump.1" {
			if errStr, _ := ev.Args["err"].(string); strings.Contains(errStr, "timeout") {
				sawFailing = true
			}
		}
	}
	if !sawFailing {
		t.Error("dump does not contain the failing call's span")
	}

	// The caller span records every retransmit.
	caller, _ := spansFor(tr.Recent(), 1)
	if caller == nil {
		t.Fatal("failing caller span not in flight recorder")
	}
	if caller.Retries != 2 {
		t.Errorf("caller retries = %d, want 2", caller.Retries)
	}
	if caller.Err != "timeout" {
		t.Errorf("caller err = %q, want timeout", caller.Err)
	}
}

func TestPanicDumpsFlightRecorder(t *testing.T) {
	var dump syncBuffer
	tr := trace.New(trace.Config{RingSize: 64, FailureDump: &dump})
	e := newEnv(t, 2, WithTracer(tr))
	ref := e.c.Node(1).Export(&Service{
		Name: "Boom",
		Methods: map[string]Method{
			"bump": func(call *Call, args []model.Value) []model.Value {
				panic("kaboom")
			},
		},
	})
	cs := bumpSite(t, e.c)
	_, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(1)})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want remote panic", err)
	}
	dump.waitDump(t)
	if tr.Failures() == 0 {
		t.Error("tracer counted no failures after a panic")
	}
}

func TestTracedRemoteErrorFailsBothSpans(t *testing.T) {
	tr := trace.New(trace.Config{RingSize: 16})
	e := newEnv(t, 2, WithTracer(tr))
	// No object exported: lookup fails on the callee, which replies
	// with a remote error before a callee span exists.
	cs := bumpSite(t, e.c)
	_, err := cs.Invoke(e.c.Node(0), Ref{Node: 1, Obj: 99}, []model.Value{model.Int(1)})
	if err == nil {
		t.Fatal("expected remote error")
	}
	caller, _ := spansFor(tr.Recent(), 1)
	if caller == nil {
		t.Fatal("caller span missing")
	}
	if caller.Err == "" {
		t.Error("caller span not marked failed on remote error")
	}
}

func TestTracedCallOverTCP(t *testing.T) {
	// Wall timestamps must survive the real network stack: transit and
	// reply-transit phases come from the TCP frame header.
	tr := trace.New(trace.Config{RingSize: 16})
	tn, err := transport.NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	c := New(2, WithNetwork(tn), WithTracer(tr))
	t.Cleanup(c.Close)
	var execs atomic.Int64
	ref := c.Node(1).Export(countingService(&execs))
	cs := c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.bump.1", Method: "bump",
		ArgPlans: []*serial.Plan{intPlan("t.bump.1")},
		RetPlans: []*serial.Plan{intPlan("t.bump.1")},
	})
	out, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != 2 {
		t.Fatalf("result = %d, want 2", out[0].I)
	}
	caller, callee := spansFor(tr.Recent(), 1)
	if caller == nil || callee == nil {
		t.Fatalf("missing span half over TCP: caller=%v callee=%v", caller, callee)
	}
	if callee.PhaseDur[trace.PhaseTransit] <= 0 {
		t.Error("call transit not measured over TCP")
	}
	if caller.PhaseDur[trace.PhaseReplyTransit] <= 0 {
		t.Error("reply transit not measured over TCP")
	}
}
