package serial

import (
	"testing"

	"cormi/internal/model"
	"cormi/internal/race"
	"cormi/internal/stats"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// TestPureHotPathZeroAllocs drives one complete steady-state data
// trip — marshal into a pooled message, seal the frame in place, hand
// it to the channel transport, receive, unseal, and unmarshal into the
// §3.3 reuse caches — and requires ZERO heap allocations per trip.
// This is the PR's headline invariant (DESIGN.md §8): every byte
// buffer, message struct, serialization context, cycle table and
// object graph on this path is recycled.
func TestPureHotPathZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	w := newWorld()
	plans := []*Plan{w.nodeListPlan(true)}
	cfg := Config{Mode: ModeSite, CycleElim: true, Reuse: true}
	vals := []model.Value{model.Ref(w.makeList(64))}
	var c stats.Counters

	net := transport.NewChannelNetwork(2, 4)
	defer net.Close()
	e0, e1 := net.Endpoint(0), net.Endpoint(1)

	var cached []*model.Object
	var scratch []model.Value
	trip := func() {
		m := wire.Get()
		if _, err := WriteValues(m, vals, plans, cfg, &c); err != nil {
			t.Fatalf("WriteValues: %v", err)
		}
		m.SealFrame()
		frame := m.Detach()
		if err := e0.Send(transport.Packet{To: 1, Payload: frame}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		p, ok := e1.Recv()
		if !ok {
			t.Fatal("Recv: endpoint closed")
		}
		payload, err := wire.Unseal(p.Payload)
		if err != nil {
			t.Fatalf("Unseal: %v", err)
		}
		rd := wire.GetReader(payload)
		got, roots, _, rerr := ReadValuesScratch(rd, w.reg, 1, plans, cfg, cached, scratch, &c)
		if rerr != nil {
			t.Fatalf("ReadValuesScratch: %v", rerr)
		}
		rd.ReleaseReader()
		wire.PutBuf(p.Payload)
		cached, scratch = roots, got
	}

	// Warm the pools, the reuse cache and the cycle-table maps.
	for i := 0; i < 10; i++ {
		trip()
	}
	if avg := testing.AllocsPerRun(200, trip); avg != 0 {
		t.Fatalf("steady-state serialize+send+receive trip allocates %.2f/op, want 0", avg)
	}
}
