package serial

import (
	"fmt"

	"cormi/internal/model"
)

// Claim checking (audit mode): re-verify at runtime, on sampled calls,
// the two compile-time claims the optimizer acts on — §3.2 "this
// message's graphs are repeat-free, the cycle table can be elided" and
// §3.3 "the cached donor graph has the shape the plan will overwrite".
// A violation means the static analysis mis-predicted the runtime heap
// and would have corrupted data silently; callers count it and fall
// back to the safe path instead.

// ClaimViolation describes one runtime refutation of a compile-time
// claim.
type ClaimViolation struct {
	Site  string // Plan.Site of the offending plan
	Index int    // value index within the message
	Claim string // "acyclic" or "reuse-shape"
	Class string // runtime class of the offending object
}

func (v *ClaimViolation) String() string {
	if v == nil {
		return "claims hold"
	}
	return fmt.Sprintf("claim %q violated at %s value %d (runtime class %s)",
		v.Claim, v.Site, v.Index, v.Class)
}

// CheckAcyclic walks the reference values whose plans claim the cycle
// table is unnecessary (NeedCycle=false) and reports the first object
// encountered twice, nil when the claim holds. The walk mirrors the
// compile-time traversal: ONE shared seen set across all claiming
// values, so the same object passed in two arguments (Figure 8) also
// refutes the claim. Values whose plans keep the table are skipped —
// their repeats are legal. The walk terminates on true cycles because
// it stops at the first repeat.
func CheckAcyclic(vals []model.Value, plans []*Plan) *ClaimViolation {
	seen := map[*model.Object]bool{}
	for i, v := range vals {
		if v.Kind != model.FRef || v.O == nil {
			continue
		}
		var p *Plan
		if i < len(plans) {
			p = plans[i]
		}
		if p == nil || p.NeedCycle {
			continue
		}
		if o := repeatIn(v.O, seen); o != nil {
			return &ClaimViolation{Site: p.Site, Index: i, Claim: "acyclic", Class: o.Class.Name}
		}
	}
	return nil
}

// repeatIn DFS-walks one object graph, returning the first object seen
// twice (nil for repeat-free graphs). Stopping at the first repeat
// bounds the walk even when the graph really is cyclic.
func repeatIn(o *model.Object, seen map[*model.Object]bool) *model.Object {
	if o == nil {
		return nil
	}
	if seen[o] {
		return o
	}
	seen[o] = true
	switch o.Class.Kind {
	case model.KObject:
		for i, f := range o.Class.AllFields() {
			if f.Kind != model.FRef {
				continue
			}
			if r := repeatIn(o.Fields[i].O, seen); r != nil {
				return r
			}
		}
	case model.KRefArray:
		for _, e := range o.Refs {
			if r := repeatIn(e, seen); r != nil {
				return r
			}
		}
	}
	return nil
}

// CheckReuseShape validates donor graphs taken from a ReuseCache
// against the plans about to overwrite them: a donor whose root class
// differs from the plan's statically predicted class refutes the reuse
// claim. Incompatible donors are nil'ed in place — the reader then
// allocates fresh objects instead of corrupting the overwrite — and
// every refutation is reported. (takeDonor would also refuse such a
// donor; the check exists to make the mis-prediction observable rather
// than silently absorbed.)
func CheckReuseShape(donors []*model.Object, plans []*Plan) []ClaimViolation {
	var out []ClaimViolation
	for i, d := range donors {
		if d == nil || i >= len(plans) {
			continue
		}
		p := plans[i]
		if p == nil || p.Kind != model.FRef || p.Root == nil {
			continue
		}
		if d.Class != p.Root.Class {
			out = append(out, ClaimViolation{Site: p.Site, Index: i, Claim: "reuse-shape", Class: d.Class.Name})
			donors[i] = nil
		}
	}
	return out
}
