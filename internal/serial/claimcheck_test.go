package serial

import (
	"testing"

	"cormi/internal/model"
)

func (w *testWorld) mkLeaf(x int64) *model.Object {
	o := model.New(w.leaf)
	o.Fields[0] = model.Value{Kind: model.FInt, I: x}
	return o
}

func (w *testWorld) mkPair(l, r *model.Object) *model.Object {
	o := model.New(w.pair)
	o.Fields[0] = model.Value{Kind: model.FRef, O: l}
	o.Fields[1] = model.Value{Kind: model.FRef, O: r}
	return o
}

// acyclicPairPlan is the pair plan with the §3.2 claim attached: the
// compiler decided no cycle table is needed.
func (w *testWorld) acyclicPairPlan() *Plan {
	p := w.pairPlan()
	p.NeedCycle = false
	return p
}

func TestCheckAcyclicHoldsOnTree(t *testing.T) {
	w := newWorld()
	pair := w.mkPair(w.mkLeaf(1), w.mkLeaf(2))
	vals := []model.Value{{Kind: model.FRef, O: pair}}
	if v := CheckAcyclic(vals, []*Plan{w.acyclicPairPlan()}); v != nil {
		t.Fatalf("tree refuted the acyclic claim: %v", v)
	}
}

func TestCheckAcyclicCatchesSharing(t *testing.T) {
	w := newWorld()
	shared := w.mkLeaf(7)
	pair := w.mkPair(shared, shared)
	vals := []model.Value{{Kind: model.FRef, O: pair}}
	v := CheckAcyclic(vals, []*Plan{w.acyclicPairPlan()})
	if v == nil || v.Claim != "acyclic" || v.Class != "Leaf" {
		t.Fatalf("shared leaf not caught: %v", v)
	}
}

func TestCheckAcyclicCatchesTrueCycleAndTerminates(t *testing.T) {
	w := newWorld()
	n := model.New(w.node)
	n.Fields[0] = model.Value{Kind: model.FInt, I: 1}
	n.Fields[1] = model.Value{Kind: model.FRef, O: n} // self loop
	plan := w.nodeListPlan(false)
	plan.NeedCycle = false // claim it acyclic — a lie
	vals := []model.Value{{Kind: model.FRef, O: n}}
	v := CheckAcyclic(vals, []*Plan{plan})
	if v == nil || v.Class != "Node" {
		t.Fatalf("self loop not caught: %v", v)
	}
}

func TestCheckAcyclicSharedAcrossValues(t *testing.T) {
	// Figure 8 shape: the SAME object as two separate values must
	// refute the claim even though each graph alone is repeat-free.
	w := newWorld()
	shared := w.mkLeaf(3)
	leafNP := &NodePlan{Class: w.leaf, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "x"}}}
	mk := func(site string) *Plan {
		return &Plan{Site: site, Kind: model.FRef, Root: leafNP, NeedCycle: false}
	}
	vals := []model.Value{{Kind: model.FRef, O: shared}, {Kind: model.FRef, O: shared}}
	v := CheckAcyclic(vals, []*Plan{mk("F.a.1"), mk("F.a.1")})
	if v == nil || v.Index != 1 {
		t.Fatalf("cross-value sharing not caught: %v", v)
	}
}

func TestCheckAcyclicSkipsCycleKeptPlans(t *testing.T) {
	// A plan that keeps the table makes no claim: its repeats are
	// legal and must not be reported.
	w := newWorld()
	n := model.New(w.node)
	n.Fields[1] = model.Value{Kind: model.FRef, O: n}
	vals := []model.Value{{Kind: model.FRef, O: n}}
	if v := CheckAcyclic(vals, []*Plan{w.nodeListPlan(false)}); v != nil {
		t.Fatalf("cycle-kept plan reported: %v", v)
	}
}

func TestCheckReuseShape(t *testing.T) {
	w := newWorld()
	plan := w.acyclicPairPlan()
	good := w.mkPair(w.mkLeaf(1), w.mkLeaf(2))
	bad := w.mkLeaf(9) // wrong class for a Pair plan
	donors := []*model.Object{good, bad}
	out := CheckReuseShape(donors, []*Plan{plan, plan})
	if len(out) != 1 || out[0].Index != 1 || out[0].Claim != "reuse-shape" || out[0].Class != "Leaf" {
		t.Fatalf("reuse-shape check = %v", out)
	}
	if donors[0] != good {
		t.Fatal("compatible donor dropped")
	}
	if donors[1] != nil {
		t.Fatal("incompatible donor not nil'ed")
	}
	// Nil donors and primitive/dynamic plans are skipped.
	if out := CheckReuseShape([]*model.Object{nil}, []*Plan{plan}); len(out) != 0 {
		t.Fatalf("nil donor reported: %v", out)
	}
}
