package serial

import (
	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
)

// MaxHandleEntries bounds the receive-side handle table (the mirror of
// the write-side cycle table): the number of objects a single frame
// may register for refHandle back-references. The paper's workloads
// top out at ~100 objects per message (a LinkedList of list_elems
// nodes, an LU block column); 65536 is three orders of magnitude above
// that and still small enough that a hostile frame hitting the cap has
// committed well under the frame's own size in table memory. The
// write side needs no cap: it serializes graphs the local program
// built, and the table grows one entry per real object. The read side
// enforces the cap in readCtx.register — a frame that overflows it is
// rejected with wire.ErrMalformedFrame.
const MaxHandleEntries = 1 << 16

// writeTable is the cycle-detection hash-table of the serializer: it
// maps every object already written to its transmission index so that
// re-encounters become handles instead of infinite recursion. Creating
// it, inserting every reference and looking references up is exactly
// the overhead the paper's §3.2 optimization removes when the heap
// analysis proves the argument graph acyclic.
type writeTable struct {
	m    map[*model.Object]int32
	next int32
}

// reset prepares t for a new message (and accounts for the table the
// serializer conceptually creates). The map is allocated once per
// pooled writeCtx and cleared between messages, so steady-state cycle
// tracking costs no allocation.
func (t *writeTable) reset(c *stats.Counters, ops *simtime.OpCount) *writeTable {
	c.CycleTables.Add(1)
	ops.CycleTables++
	if t.m == nil {
		t.m = make(map[*model.Object]int32)
	} else {
		clear(t.m)
	}
	t.next = 0
	return t
}

// lookupOrAdd returns the handle of o if it was already serialized, or
// assigns the next handle and reports !found.
func (t *writeTable) lookupOrAdd(o *model.Object, c *stats.Counters, ops *simtime.OpCount) (handle int32, found bool) {
	c.CycleLookups.Add(1)
	ops.CycleLookups++
	if h, ok := t.m[o]; ok {
		return h, true
	}
	h := t.next
	t.next++
	t.m[o] = h
	return h, false
}
