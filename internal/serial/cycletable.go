package serial

import (
	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
)

// writeTable is the cycle-detection hash-table of the serializer: it
// maps every object already written to its transmission index so that
// re-encounters become handles instead of infinite recursion. Creating
// it, inserting every reference and looking references up is exactly
// the overhead the paper's §3.2 optimization removes when the heap
// analysis proves the argument graph acyclic.
type writeTable struct {
	m    map[*model.Object]int32
	next int32
}

// reset prepares t for a new message (and accounts for the table the
// serializer conceptually creates). The map is allocated once per
// pooled writeCtx and cleared between messages, so steady-state cycle
// tracking costs no allocation.
func (t *writeTable) reset(c *stats.Counters, ops *simtime.OpCount) *writeTable {
	c.CycleTables.Add(1)
	ops.CycleTables++
	if t.m == nil {
		t.m = make(map[*model.Object]int32)
	} else {
		clear(t.m)
	}
	t.next = 0
	return t
}

// lookupOrAdd returns the handle of o if it was already serialized, or
// assigns the next handle and reports !found.
func (t *writeTable) lookupOrAdd(o *model.Object, c *stats.Counters, ops *simtime.OpCount) (handle int32, found bool) {
	c.CycleLookups.Add(1)
	ops.CycleLookups++
	if h, ok := t.m[o]; ok {
		return h, true
	}
	h := t.next
	t.next++
	t.m[o] = h
	return h, false
}
