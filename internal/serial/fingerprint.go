package serial

import (
	"cormi/internal/model"
)

// Plan fingerprints.
//
// A compiled site plan is deterministic in the class layout it was
// generated from: the plan walker emits one step per flattened field,
// in declaration order, typed by the field's static kind (plan.go).
// Two nodes therefore decode each other's planned frames correctly if
// and only if they agree on that layout for every class that can cross
// the link. ClassFingerprint hashes exactly the layout facts plan
// generation consumes — kind, name, superclass chain, flattened field
// names/kinds/static ref targets, array element class — so equal
// fingerprints imply equal plans and unequal fingerprints flag every
// layout change (field added, removed, reordered, retyped) that would
// make a compiled plan mis-decode.
//
// The hash is FNV-1a over a tagged byte walk. It is not
// collision-resistant against an adversary, but an adversary who
// forges a fingerprint can at worst force the link onto the
// self-describing class-level encoding or feed the hardened decoder
// malformed frames — both safe outcomes by construction.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvStr(h uint64, s string) uint64 {
	// Length-prefix the string so "ab"+"c" and "a"+"bc" hash apart.
	h = fnvByte(h, byte(len(s)))
	h = fnvByte(h, byte(len(s)>>8))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// ClassFingerprint hashes the layout facts a compiled plan for c
// depends on. Identical class graphs yield identical fingerprints on
// every node regardless of registration order (IDs are deliberately
// excluded — they are assigned in registration order and carry no
// layout information).
func ClassFingerprint(c *model.Class) uint64 {
	h := uint64(fnvOffset64)
	h = fnvByte(h, byte(c.Kind))
	h = fnvStr(h, c.Name)
	for s := c.Super; s != nil; s = s.Super {
		h = fnvByte(h, 'S')
		h = fnvStr(h, s.Name)
	}
	for _, f := range c.AllFields() {
		h = fnvByte(h, 'F')
		h = fnvStr(h, f.Name)
		h = fnvByte(h, byte(f.Kind))
		if f.Kind == model.FRef && f.Class != nil {
			h = fnvStr(h, f.Class.Name)
		}
	}
	if c.Elem != nil {
		h = fnvByte(h, 'E')
		h = fnvStr(h, c.Elem.Name)
	}
	return h
}

// RegistryFingerprints computes the fingerprint of every class in reg,
// keyed by class name — the table a node advertises in its HELLO
// frame.
func RegistryFingerprints(reg *model.Registry) map[string]uint64 {
	fps := make(map[string]uint64)
	for _, name := range reg.Names() {
		if c, ok := reg.ByName(name); ok {
			fps[name] = ClassFingerprint(c)
		}
	}
	return fps
}
