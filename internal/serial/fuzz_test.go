package serial

import (
	"errors"
	"testing"

	"cormi/internal/model"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// FuzzReadValues drives the payload decoder — both the class-mode
// (self-describing) and site-mode (planned) paths — with arbitrary
// bytes. The hardening contract: no panic, no error other than a typed
// wire.ErrMalformedFrame, and the pooled read-context balance stays
// even across every outcome.
func FuzzReadValues(f *testing.F) {
	seedWorld := newWorld()
	var c stats.Counters
	// Seed with genuine encodings so mutation starts from accepted
	// shapes: a planned list, a dynamic list, and primitives.
	m := wire.NewMessage(0)
	plan := seedWorld.nodeListPlan(false)
	if _, err := WriteValues(m, []model.Value{model.Ref(seedWorld.makeList(5))},
		[]*Plan{plan}, Config{Mode: ModeSite}, &c); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte{1}, m.Bytes()...))
	m = wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(seedWorld.makeList(3)), model.Int(7)},
		nil, Config{Mode: ModeClass}, &c); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte{2}, m.Bytes()...))
	f.Add([]byte{1, byte(model.FRef), refNewDynamic})
	f.Add([]byte{0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// First byte selects the value count (bounded); the rest is the
		// frame payload.
		if len(data) == 0 {
			return
		}
		n := int(data[0]%5) + 1
		payload := data[1:]
		w := newWorld()
		fuzzPlan := w.nodeListPlan(false)
		plans := make([]*Plan, n)
		for i := range plans {
			plans[i] = fuzzPlan
		}
		before := ReadCtxStats()
		var cc stats.Counters
		if _, _, _, err := ReadValues(wire.FromBytes(payload), w.reg, n, nil,
			Config{Mode: ModeClass}, nil, &cc); err != nil && !errors.Is(err, wire.ErrMalformedFrame) {
			t.Fatalf("class-mode rejection %v is not ErrMalformedFrame", err)
		}
		if _, _, _, err := ReadValues(wire.FromBytes(payload), w.reg, n, plans,
			Config{Mode: ModeSite}, nil, &cc); err != nil && !errors.Is(err, wire.ErrMalformedFrame) {
			t.Fatalf("site-mode rejection %v is not ErrMalformedFrame", err)
		}
		after := ReadCtxStats()
		if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
			t.Fatalf("read-context leak: %d gets, %d puts", gets, puts)
		}
	})
}
