package serial

import (
	"sync/atomic"

	"cormi/internal/model"
)

// LinkPlans is the negotiated serialization agreement for one directed
// link, produced from the HELLO fingerprint exchange at connect time.
// It records which classes were demoted: a demoted class is written
// with the universal self-describing class-level encoding
// (refNewDynamic) on this link even where a compiled site plan exists,
// because the peer's plan for it was compiled from a different layout
// and would mis-decode the planned form. The read side needs no
// counterpart — the reference marker dispatch in readRef decodes
// dynamic bodies correctly under any plan — so negotiation is a pure
// write-side table.
//
// The demotion set is immutable after Negotiate; only the fallback
// counter mutates, so a LinkPlans is safe for concurrent use by every
// sender on the link. A nil *LinkPlans means "nothing demoted" and is
// the homogeneous-cluster fast path: writers pay one nil check.
type LinkPlans struct {
	demoted []uint64 // bitset over class IDs; immutable after Negotiate
	count   int      // number of demoted classes
	version int32    // negotiated wire protocol version of the link

	fallbacks atomic.Int64 // objects demoted to class-level encoding
}

// Negotiate compares the local and remote per-class fingerprint tables
// and returns the link's plan table, or nil when every class agrees
// (so the homogeneous common case carries no per-link state at all).
// A class is demoted when the peer's fingerprint differs or the peer
// does not advertise the class; classes only the peer knows need no
// entry because the local writer can never emit them.
func Negotiate(reg *model.Registry, local, remote map[string]uint64) *LinkPlans {
	var lp *LinkPlans
	for _, name := range reg.Names() {
		lfp, lok := local[name]
		rfp, rok := remote[name]
		if lok && rok && lfp == rfp {
			continue
		}
		c, ok := reg.ByName(name)
		if !ok {
			continue
		}
		if lp == nil {
			lp = &LinkPlans{version: 1}
		}
		lp.demote(c.ID)
	}
	return lp
}

// DemoteAll returns a table with every registered class demoted — the
// conservative fallback when a peer's HELLO cannot be decoded at all.
func DemoteAll(reg *model.Registry) *LinkPlans {
	lp := &LinkPlans{version: 1}
	for _, name := range reg.Names() {
		if c, ok := reg.ByName(name); ok {
			lp.demote(c.ID)
		}
	}
	return lp
}

func (lp *LinkPlans) demote(id int32) {
	w := int(uint32(id) >> 6)
	for len(lp.demoted) <= w {
		lp.demoted = append(lp.demoted, 0)
	}
	bit := uint64(1) << (uint32(id) & 63)
	if lp.demoted[w]&bit == 0 {
		lp.demoted[w] |= bit
		lp.count++
	}
}

// Demoted reports whether c must use the class-level encoding on this
// link. Classes registered after negotiation (IDs beyond the bitset)
// read as not-demoted: the HELLO couldn't have covered them, and in
// the shared-registry deployments this runtime models their layouts
// are identical by construction.
func (lp *LinkPlans) Demoted(c *model.Class) bool {
	if lp == nil {
		return false
	}
	w := int(uint32(c.ID) >> 6)
	return w < len(lp.demoted) && lp.demoted[w]&(1<<(uint32(c.ID)&63)) != 0
}

// DemotedCount returns how many classes the negotiation demoted.
func (lp *LinkPlans) DemotedCount() int {
	if lp == nil {
		return 0
	}
	return lp.count
}

// Fallbacks returns how many objects this link has written through the
// demoted class-level encoding.
func (lp *LinkPlans) Fallbacks() int64 {
	if lp == nil {
		return 0
	}
	return lp.fallbacks.Load()
}
