package serial

import (
	"errors"
	"strings"
	"testing"

	"cormi/internal/model"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// Adversarial deserialization suite: every frame here is CRC-plausible
// input an attacker (or a badly skewed peer) could hand the decoder.
// The contract under test is uniform — a typed wire.ErrMalformedFrame,
// no panic, no unbounded allocation, and no leaked pooled read context.

// hostileFrame builds a class-mode frame whose single value is a
// reference encoded by body.
func hostileFrame(body func(m *wire.Message)) []byte {
	m := wire.NewMessage(64)
	m.AppendByte(byte(model.FRef))
	body(m)
	return m.Bytes()
}

// decodeClass runs one class-mode decode of a hostile frame.
func decodeClass(w *testWorld, frame []byte) error {
	var c stats.Counters
	_, _, _, err := ReadValues(wire.FromBytes(frame), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c)
	return err
}

// validListFrame writes a 10-node list with the site plan, for the
// truncation and budget tests.
func validListFrame(t *testing.T, w *testWorld, plan *Plan) []byte {
	t.Helper()
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(w.makeList(10))}, []*Plan{plan}, Config{Mode: ModeSite}, &c); err != nil {
		t.Fatal(err)
	}
	return m.Bytes()
}

func TestMalformedFrames(t *testing.T) {
	w := newWorld()
	refArray := w.reg.ArrayOf(w.leaf)
	doubleArray := w.reg.DoubleArray()
	plan := w.nodeListPlan(false)
	listFrame := validListFrame(t, w, plan)

	cases := []struct {
		name  string
		frame []byte
		site  bool // decode with the site plan instead of class mode
	}{
		{"truncated planned payload", listFrame[:len(listFrame)-4], true},
		{"empty frame", nil, false},
		{"bad value kind", []byte{9}, false},
		{"bad reference marker", hostileFrame(func(m *wire.Message) {
			m.AppendByte(77)
		}), false},
		{"dangling handle", hostileFrame(func(m *wire.Message) {
			m.AppendByte(refHandle)
			m.AppendInt32(5)
		}), false},
		{"negative handle", hostileFrame(func(m *wire.Message) {
			m.AppendByte(refHandle)
			m.AppendInt32(-1)
		}), false},
		{"unknown class ID", hostileFrame(func(m *wire.Message) {
			m.AppendByte(refNewDynamic)
			m.AppendInt32(9999)
		}), false},
		// The oversized-declared-length attack: a 10-byte frame claiming
		// a 2-billion-element reference array. The ≥1-byte-per-element
		// payload bound must reject it before the element slice exists.
		{"ref-array length bomb", hostileFrame(func(m *wire.Message) {
			m.AppendByte(refNewDynamic)
			m.AppendInt32(refArray.ID)
			m.AppendInt32(0x7fffffff)
		}), false},
		{"negative ref-array length", hostileFrame(func(m *wire.Message) {
			m.AppendByte(refNewDynamic)
			m.AppendInt32(refArray.ID)
			m.AppendInt32(-5)
		}), false},
		// Handle-count overflow: a ref array of empty double[] elements,
		// each registering one handle, crossing MaxHandleEntries.
		{"handle table overflow", hostileFrame(func(m *wire.Message) {
			n := MaxHandleEntries + 64
			m.AppendByte(refNewDynamic)
			m.AppendInt32(refArray.ID)
			m.AppendInt32(int32(n))
			for i := 0; i < n; i++ {
				m.AppendByte(refNewDynamic)
				m.AppendInt32(doubleArray.ID)
				m.AppendInt32(0) // zero-length float payload
			}
		}), false},
		// Depth bomb: Node nested through its next field past
		// MaxDecodeDepth, one dynamic object header per level.
		{"recursive depth bomb", hostileFrame(func(m *wire.Message) {
			for i := 0; i < MaxDecodeDepth+8; i++ {
				m.AppendByte(refNewDynamic)
				m.AppendInt32(w.node.ID)
				m.AppendInt64(int64(i)) // field v
			}
			m.AppendByte(refNull)
		}), false},
	}

	before := ReadCtxStats()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.site {
				var c stats.Counters
				_, _, _, err = ReadValues(wire.FromBytes(tc.frame), w.reg, 1,
					[]*Plan{plan}, Config{Mode: ModeSite}, nil, &c)
			} else {
				err = decodeClass(w, tc.frame)
			}
			if err == nil {
				t.Fatal("hostile frame decoded without error")
			}
			if !errors.Is(err, wire.ErrMalformedFrame) {
				t.Fatalf("error %v is not wire.ErrMalformedFrame", err)
			}
		})
	}
	after := ReadCtxStats()
	// Every rejected decode must still release its pooled read context.
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("read contexts leaked across malformed decodes: %d gets, %d puts", gets, puts)
	}
	if after.Outstanding != before.Outstanding {
		t.Fatalf("outstanding read contexts drifted: %d -> %d", before.Outstanding, after.Outstanding)
	}
}

// TestImplausibleValueCount covers the header-level bound: the declared
// value count itself is hostile input.
func TestImplausibleValueCount(t *testing.T) {
	w := newWorld()
	var c stats.Counters
	for _, n := range []int{-1, MaxWireValues + 1} {
		_, _, _, err := ReadValues(wire.FromBytes(nil), w.reg, n, nil, Config{Mode: ModeClass}, nil, &c)
		if !errors.Is(err, wire.ErrMalformedFrame) {
			t.Fatalf("count %d: err = %v, want ErrMalformedFrame", n, err)
		}
	}
}

// TestLengthBombAllocationBound pins the headline hardening property:
// a ~10-byte hostile frame declaring a 2-billion-element array is
// rejected in O(1) allocations — the declared size never materializes.
func TestLengthBombAllocationBound(t *testing.T) {
	w := newWorld()
	refArray := w.reg.ArrayOf(w.leaf)
	frame := hostileFrame(func(m *wire.Message) {
		m.AppendByte(refNewDynamic)
		m.AppendInt32(refArray.ID)
		m.AppendInt32(0x7fffffff)
	})
	if len(frame) > 64 {
		t.Fatalf("hostile frame is %d bytes, want tiny", len(frame))
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := decodeClass(w, frame); err == nil {
			t.Fatal("length bomb decoded")
		}
	})
	if allocs > 16 {
		t.Fatalf("rejecting a %d-byte length bomb cost %.0f allocs", len(frame), allocs)
	}
}

// TestDecodeBudget exercises the per-frame allocation byte budget
// directly by shrinking it: a frame whose graph outgrows the budget is
// rejected with the typed error, and restoring the budget re-admits it.
func TestDecodeBudget(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	frame := validListFrame(t, w, plan)
	var c stats.Counters

	base, per := decodeBudgetBase, decodeBudgetPerByte
	defer func() { decodeBudgetBase, decodeBudgetPerByte = base, per }()
	decodeBudgetBase, decodeBudgetPerByte = 32, 0

	_, _, _, err := ReadValues(wire.FromBytes(frame), w.reg, 1, []*Plan{plan}, Config{Mode: ModeSite}, nil, &c)
	if !errors.Is(err, wire.ErrMalformedFrame) {
		t.Fatalf("over-budget decode: err = %v, want ErrMalformedFrame", err)
	}

	decodeBudgetBase, decodeBudgetPerByte = base, per
	if _, _, _, err := ReadValues(wire.FromBytes(frame), w.reg, 1, []*Plan{plan}, Config{Mode: ModeSite}, nil, &c); err != nil {
		t.Fatalf("decode under the real budget failed: %v", err)
	}
}

// TestDefaultBudgetAdmitsPaperWorkloads checks the budget constants
// against the paper's largest message shape (a 100-element list) with
// generous margin: hardening must not reject legitimate traffic.
func TestDefaultBudgetAdmitsPaperWorkloads(t *testing.T) {
	w := newWorld()
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(w.makeList(1000))}, nil, Config{Mode: ModeClass}, &c); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c); err != nil {
		t.Fatalf("1000-element list rejected by decode budget: %v", err)
	}
}

// TestMalformedDoesNotStickToPool ensures a message poisoned by Fail
// does not leave state behind when its buffers recycle: decode a
// hostile frame, then a valid one, through the same pooled paths.
func TestMalformedDoesNotStickToPool(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	frame := validListFrame(t, w, plan)
	bad := append([]byte(nil), frame[:len(frame)-6]...)
	var c stats.Counters
	for i := 0; i < 8; i++ {
		if _, _, _, err := ReadValues(wire.FromBytes(bad), w.reg, 1, []*Plan{plan}, Config{Mode: ModeSite}, nil, &c); err == nil {
			t.Fatal("truncated frame decoded")
		}
		got, _, _, err := ReadValues(wire.FromBytes(frame), w.reg, 1, []*Plan{plan}, Config{Mode: ModeSite}, nil, &c)
		if err != nil {
			t.Fatalf("valid decode after malformed one failed: %v", err)
		}
		if got[0].O.Get("v").I != 0 {
			t.Fatal("valid decode corrupted after malformed frame")
		}
	}
}

// TestHandleOverflowErrorMentionsCap pins the diagnostic: operators
// debugging a rejected frame need the limit in the message.
func TestHandleOverflowErrorMentionsCap(t *testing.T) {
	w := newWorld()
	refArray := w.reg.ArrayOf(w.leaf)
	doubleArray := w.reg.DoubleArray()
	n := MaxHandleEntries + 1
	frame := hostileFrame(func(m *wire.Message) {
		m.AppendByte(refNewDynamic)
		m.AppendInt32(refArray.ID)
		m.AppendInt32(int32(n))
		for i := 0; i < n; i++ {
			m.AppendByte(refNewDynamic)
			m.AppendInt32(doubleArray.ID)
			m.AppendInt32(0)
		}
	})
	err := decodeClass(w, frame)
	if !errors.Is(err, wire.ErrMalformedFrame) {
		t.Fatalf("err = %v", err)
	}
	if want := "handle table overflow"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}
