package serial

import (
	"testing"

	"cormi/internal/model"
)

// buildWorldReordered defines the same classes as newWorld in a
// different registration order, so class IDs differ but layouts agree.
func buildWorldReordered() *testWorld {
	w := &testWorld{reg: model.NewRegistry()}
	w.leaf = w.reg.MustDefine("Leaf", nil, model.Field{Name: "x", Kind: model.FInt})
	w.base = w.reg.MustDefine("Base", nil)
	w.node = w.reg.MustDefine("Node", nil, model.Field{Name: "v", Kind: model.FInt})
	w.node.Fields = append(w.node.Fields, model.Field{Name: "next", Kind: model.FRef, Class: w.node})
	w.pair = w.reg.MustDefine("Pair", nil,
		model.Field{Name: "l", Kind: model.FRef, Class: w.leaf},
		model.Field{Name: "r", Kind: model.FRef, Class: w.leaf},
	)
	w.derived1 = w.reg.MustDefine("Derived1", w.base, model.Field{Name: "data", Kind: model.FInt})
	w.derived2 = w.reg.MustDefine("Derived2", w.base,
		model.Field{Name: "p", Kind: model.FRef, Class: w.derived1})
	return w
}

// TestFingerprintRegistrationOrderIndependent: two nodes that define
// the same class graph in different orders (so IDs differ) must
// advertise identical fingerprints — IDs are registration artifacts,
// not layout facts.
func TestFingerprintRegistrationOrderIndependent(t *testing.T) {
	a, b := newWorld(), buildWorldReordered()
	fa, fb := RegistryFingerprints(a.reg), RegistryFingerprints(b.reg)
	for name, fp := range fa {
		if got, ok := fb[name]; !ok {
			t.Errorf("class %s missing from reordered registry", name)
		} else if got != fp {
			t.Errorf("class %s: fingerprint %016x != %016x across registration orders", name, fp, got)
		}
	}
}

// TestFingerprintDetectsLayoutChanges: every layout mutation a rolling
// upgrade can introduce — field added, removed, reordered, retyped,
// superclass changed — must flip the fingerprint.
func TestFingerprintDetectsLayoutChanges(t *testing.T) {
	base := func() *model.Registry { return model.NewRegistry() }
	orig := base().MustDefine("C", nil,
		model.Field{Name: "a", Kind: model.FInt},
		model.Field{Name: "b", Kind: model.FDouble},
	)
	variants := map[string]*model.Class{
		"field added": base().MustDefine("C", nil,
			model.Field{Name: "a", Kind: model.FInt},
			model.Field{Name: "b", Kind: model.FDouble},
			model.Field{Name: "c", Kind: model.FBool},
		),
		"field removed": base().MustDefine("C", nil,
			model.Field{Name: "a", Kind: model.FInt},
		),
		"fields reordered": base().MustDefine("C", nil,
			model.Field{Name: "b", Kind: model.FDouble},
			model.Field{Name: "a", Kind: model.FInt},
		),
		"field retyped": base().MustDefine("C", nil,
			model.Field{Name: "a", Kind: model.FDouble},
			model.Field{Name: "b", Kind: model.FDouble},
		),
		"field renamed": base().MustDefine("C", nil,
			model.Field{Name: "a2", Kind: model.FInt},
			model.Field{Name: "b", Kind: model.FDouble},
		),
	}
	want := ClassFingerprint(orig)
	for name, v := range variants {
		if ClassFingerprint(v) == want {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	// Superclass chain matters too: the same flat fields reached through
	// a Super edge are a different planned layout origin.
	reg := base()
	sup := reg.MustDefine("S", nil, model.Field{Name: "a", Kind: model.FInt})
	sub := reg.MustDefine("C", sup, model.Field{Name: "b", Kind: model.FDouble})
	if ClassFingerprint(sub) == want {
		t.Error("superclass-split layout has the same fingerprint")
	}
}

func TestNegotiateAllAgreeIsNil(t *testing.T) {
	w := newWorld()
	fps := RegistryFingerprints(w.reg)
	if lp := Negotiate(w.reg, fps, fps); lp != nil {
		t.Fatalf("homogeneous negotiation produced %d demotions", lp.DemotedCount())
	}
}

func TestNegotiateDemotesDisagreementsOnly(t *testing.T) {
	w := newWorld()
	local := RegistryFingerprints(w.reg)
	remote := RegistryFingerprints(w.reg)
	remote["Node"] ^= 1          // skewed layout
	delete(remote, "Pair")       // peer predates the class
	remote["OnlyRemote"] = 0xabc // peer-only class: local writer can never emit it

	lp := Negotiate(w.reg, local, remote)
	if lp == nil {
		t.Fatal("disagreement negotiated to nil")
	}
	if !lp.Demoted(w.node) {
		t.Error("skewed Node not demoted")
	}
	if !lp.Demoted(w.pair) {
		t.Error("peer-unknown Pair not demoted")
	}
	if lp.Demoted(w.leaf) || lp.Demoted(w.base) {
		t.Error("agreeing class demoted")
	}
	if got := lp.DemotedCount(); got != 2 {
		t.Errorf("DemotedCount = %d, want 2", got)
	}
}

func TestDemoteAllAndNilSafety(t *testing.T) {
	w := newWorld()
	lp := DemoteAll(w.reg)
	for _, name := range w.reg.Names() {
		c, _ := w.reg.ByName(name)
		if !lp.Demoted(c) {
			t.Errorf("%s not demoted by DemoteAll", name)
		}
	}
	var nilLP *LinkPlans
	if nilLP.Demoted(w.node) || nilLP.DemotedCount() != 0 || nilLP.Fallbacks() != 0 {
		t.Error("nil LinkPlans must read as nothing-demoted")
	}
	// Classes registered after negotiation read as not-demoted.
	late := w.reg.MustDefine("Late", nil)
	sparse := Negotiate(w.reg, RegistryFingerprints(w.reg), map[string]uint64{})
	_ = sparse // every class demoted: peer advertises nothing
	lp2 := &LinkPlans{version: 1}
	lp2.demote(w.node.ID)
	if lp2.Demoted(late) {
		t.Error("post-negotiation class reads as demoted")
	}
}

// TestDemotedWriteFallsBackAndRoundTrips is the negotiation-correctness
// core: a writer holding a site plan but a demoted link must emit the
// self-describing encoding, and the frame must decode correctly under
// the same plan config on the reader.
func TestDemotedWriteFallsBackAndRoundTrips(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	lp := &LinkPlans{version: 1}
	lp.demote(w.node.ID)

	head := w.makeList(6)
	got, _, c := roundTrip(t, w, []model.Value{model.Ref(head)}, []*Plan{plan},
		Config{Mode: ModeSite, Link: lp}, nil)
	if !model.DeepEqual(head, got[0].O) {
		t.Fatal("demoted round trip mismatch")
	}
	s := c.Snapshot()
	// One fallback per planned graph root: once the root demotes to the
	// dynamic encoding, its children ride the dynamic path without
	// consulting the plan again.
	if s.PlanFallbacks != 1 {
		t.Errorf("PlanFallbacks = %d, want 1 (per demoted root)", s.PlanFallbacks)
	}
	if lp.Fallbacks() != 1 {
		t.Errorf("link Fallbacks = %d, want 1", lp.Fallbacks())
	}
	if s.SerializerCalls == 0 {
		t.Error("demoted writes should go through the dynamic serializer")
	}

	// The same write with no link table keeps the planned fast path.
	got2, _, c2 := roundTrip(t, w, []model.Value{model.Ref(head)}, []*Plan{plan},
		Config{Mode: ModeSite}, nil)
	if !model.DeepEqual(head, got2[0].O) {
		t.Fatal("planned round trip mismatch")
	}
	if s2 := c2.Snapshot(); s2.PlanFallbacks != 0 {
		t.Errorf("homogeneous write counted %d fallbacks", s2.PlanFallbacks)
	}
}
