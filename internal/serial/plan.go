package serial

import (
	"fmt"
	"strings"

	"cormi/internal/model"
)

// Plan is the call-site-specific serialization recipe for one RMI
// argument or return value, produced by the compiler (internal/core)
// from the heap graph of that call site. It is the runtime form of the
// generated marshaler bodies of Figures 6 and 13.
type Plan struct {
	// Site names the call site, e.g. "Work.go.1".
	Site string
	// Kind is the value kind of this argument (FInt, FDouble, FBool,
	// FString or FRef).
	Kind model.FieldKind
	// Root is the statically inferred object plan for FRef arguments;
	// nil means the reference is polymorphic and falls back to dynamic
	// (class mode) serialization.
	Root *NodePlan
	// NeedCycle records whether the heap analysis found the argument
	// graph potentially cyclic (§3.2). When false and cycle
	// elimination is enabled, no cycle table is created.
	NeedCycle bool
	// Reusable records whether escape analysis proved the argument
	// does not escape the remote method (§3.3), enabling object reuse.
	Reusable bool
}

// PrimitivePlan builds the trivial plan for a non-reference argument.
func PrimitivePlan(site string, kind model.FieldKind) *Plan {
	return &Plan{Site: site, Kind: kind}
}

// NodePlan describes how to serialize one object whose exact class is
// known at compile time.
type NodePlan struct {
	Class *model.Class
	// Steps lists the field operations for KObject classes, in layout
	// order.
	Steps []Step
	// Elem is the element plan for KRefArray classes; nil means
	// elements are serialized dynamically.
	Elem *NodePlan
}

// StepOp is a field-serialization operation.
type StepOp uint8

const (
	// OpInt inlines an int field copy.
	OpInt StepOp = iota
	// OpDouble inlines a double field copy.
	OpDouble
	// OpBool inlines a boolean field copy.
	OpBool
	// OpString inlines a String field copy.
	OpString
	// OpRef serializes a reference field whose target class is known
	// (Target), without type information and without a dynamic
	// serializer invocation.
	OpRef
	// OpRefDynamic serializes a polymorphic reference field through
	// the dynamic (class mode) path.
	OpRefDynamic
)

// Step is one operation of a NodePlan.
type Step struct {
	Op        StepOp
	Field     int    // index into the flattened field layout
	FieldName string // for pseudocode rendering
	Target    *NodePlan
}

// Validate checks internal consistency of the plan (step indices in
// range, operations matching field kinds).
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("serial: nil plan")
	}
	if p.Kind != model.FRef {
		if p.Root != nil {
			return fmt.Errorf("serial: plan %s: primitive kind with object plan", p.Site)
		}
		return nil
	}
	seen := map[*NodePlan]bool{}
	var check func(np *NodePlan) error
	check = func(np *NodePlan) error {
		if np == nil || seen[np] {
			return nil
		}
		seen[np] = true
		if np.Class == nil {
			return fmt.Errorf("serial: plan %s: node plan without class", p.Site)
		}
		switch np.Class.Kind {
		case model.KObject:
			fields := np.Class.AllFields()
			for _, s := range np.Steps {
				if s.Field < 0 || s.Field >= len(fields) {
					return fmt.Errorf("serial: plan %s: step field %d out of range for %s", p.Site, s.Field, np.Class.Name)
				}
				f := fields[s.Field]
				want := map[StepOp]model.FieldKind{
					OpInt: model.FInt, OpDouble: model.FDouble,
					OpBool: model.FBool, OpString: model.FString,
					OpRef: model.FRef, OpRefDynamic: model.FRef,
				}[s.Op]
				if f.Kind != want {
					return fmt.Errorf("serial: plan %s: step op %d on %s.%s (kind %v)", p.Site, s.Op, np.Class.Name, f.Name, f.Kind)
				}
				if s.Op == OpRef {
					if s.Target == nil {
						return fmt.Errorf("serial: plan %s: OpRef without target on %s.%s", p.Site, np.Class.Name, f.Name)
					}
					if err := check(s.Target); err != nil {
						return err
					}
				}
			}
		case model.KRefArray:
			if np.Elem != nil {
				if err := check(np.Elem); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(p.Root)
}

// Pseudocode renders the plan as generated-marshaler pseudocode in the
// style of the paper's Figures 6 and 13, for the rmic -dump-code tool.
func (p *Plan) Pseudocode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// call-site-specific marshaler (cycle table: %v, reuse: %v)\n", p.NeedCycle, p.Reusable)
	fmt.Fprintf(&b, "void marshaler_%s(%s s) {\n", p.Site, planTypeName(p))
	fmt.Fprintf(&b, "    Message m = new Message();\n")
	if p.NeedCycle {
		fmt.Fprintf(&b, "    CycleTable tbl = new CycleTable();\n")
	}
	emitted := map[*NodePlan]bool{}
	emitNode(&b, p.Root, "s", 1, emitted, p.NeedCycle)
	if p.Kind != model.FRef {
		fmt.Fprintf(&b, "    m.append_%s(s);\n", kindName(p.Kind))
	}
	fmt.Fprintf(&b, "    m.send();\n    delete m;\n    wait_for_return_value();\n}\n")
	return b.String()
}

func planTypeName(p *Plan) string {
	if p.Kind != model.FRef {
		return kindName(p.Kind)
	}
	if p.Root == nil {
		return "Object"
	}
	return p.Root.Class.Name
}

func kindName(k model.FieldKind) string {
	switch k {
	case model.FInt:
		return "int"
	case model.FDouble:
		return "double"
	case model.FBool:
		return "boolean"
	case model.FString:
		return "String"
	default:
		return "Object"
	}
}

func emitNode(b *strings.Builder, np *NodePlan, expr string, depth int, emitted map[*NodePlan]bool, cyc bool) {
	ind := strings.Repeat("    ", depth)
	if np == nil {
		fmt.Fprintf(b, "%sserialize_dynamic(m, %s); // polymorphic: class-specific path\n", ind, expr)
		return
	}
	if cyc {
		fmt.Fprintf(b, "%sif (tbl.seen(%s)) { m.append_handle(%s); } else {\n", ind, expr, expr)
		ind += "    "
		depth++
	}
	if emitted[np] {
		fmt.Fprintf(b, "%sserialize_%s(m, %s); // recursive structure, shared body\n", ind, sanit(np.Class.Name), expr)
	} else {
		emitted[np] = true
		switch np.Class.Kind {
		case model.KObject:
			for _, s := range np.Steps {
				f := np.Class.AllFields()[s.Field]
				switch s.Op {
				case OpInt, OpDouble, OpBool, OpString:
					fmt.Fprintf(b, "%sm.append_%s(%s.%s); // inlined\n", ind, kindName(f.Kind), expr, f.Name)
				case OpRef:
					emitNode(b, s.Target, expr+"."+f.Name, depth, emitted, cyc)
				case OpRefDynamic:
					fmt.Fprintf(b, "%sserialize_dynamic(m, %s.%s); // polymorphic field\n", ind, expr, f.Name)
				}
			}
		case model.KDoubleArray:
			fmt.Fprintf(b, "%sm.append_int(%s.length);\n%sm.append_double_array(%s); // bulk copy, no type info\n", ind, expr, ind, expr)
		case model.KIntArray:
			fmt.Fprintf(b, "%sm.append_int(%s.length);\n%sm.append_int_array(%s);\n", ind, expr, ind, expr)
		case model.KByteArray:
			fmt.Fprintf(b, "%sm.append_int(%s.length);\n%sm.append_byte_array(%s);\n", ind, expr, ind, expr)
		case model.KRefArray:
			fmt.Fprintf(b, "%sm.append_int(%s.length);\n", ind, expr)
			fmt.Fprintf(b, "%sfor (int i = 0; i < %s.length; i++) {\n", ind, expr)
			emitNode(b, np.Elem, expr+"[i]", depth+1, emitted, cyc)
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
	if cyc {
		fmt.Fprintf(b, "%s}\n", strings.Repeat("    ", depth-1))
	}
}

func sanit(s string) string {
	return strings.NewReplacer("[", "_", "]", "_", ".", "_").Replace(s)
}
