package serial

import (
	"testing"

	"cormi/internal/model"
)

// Golden tests pinning Plan.Pseudocode() output — the rendering the
// rmic dump/explain tools show users — against drift. One acyclic
// plan, one cyclic plan, one reuse-enabled plan.

func TestPseudocodeGoldenAcyclic(t *testing.T) {
	w := newWorld()
	// Distinct leaf plans: a tree, fully inlined, no cycle table.
	mkLeafNP := func() *NodePlan {
		return &NodePlan{Class: w.leaf, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "x"}}}
	}
	pairNP := &NodePlan{Class: w.pair, Steps: []Step{
		{Op: OpRef, Field: 0, FieldName: "l", Target: mkLeafNP()},
		{Op: OpRef, Field: 1, FieldName: "r", Target: mkLeafNP()},
	}}
	p := &Plan{Site: "W.take.1", Kind: model.FRef, Root: pairNP}
	const want = `// call-site-specific marshaler (cycle table: false, reuse: false)
void marshaler_W.take.1(Pair s) {
    Message m = new Message();
    m.append_int(s.l.x); // inlined
    m.append_int(s.r.x); // inlined
    m.send();
    delete m;
    wait_for_return_value();
}
`
	if got := p.Pseudocode(); got != want {
		t.Errorf("acyclic pseudocode drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPseudocodeGoldenCyclic(t *testing.T) {
	w := newWorld()
	const want = `// call-site-specific marshaler (cycle table: true, reuse: false)
void marshaler_Foo.send.1(Node s) {
    Message m = new Message();
    CycleTable tbl = new CycleTable();
    if (tbl.seen(s)) { m.append_handle(s); } else {
        m.append_int(s.v); // inlined
        if (tbl.seen(s.next)) { m.append_handle(s.next); } else {
            serialize_Node(m, s.next); // recursive structure, shared body
        }
    }
    m.send();
    delete m;
    wait_for_return_value();
}
`
	if got := w.nodeListPlan(false).Pseudocode(); got != want {
		t.Errorf("cyclic pseudocode drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPseudocodeGoldenReuse(t *testing.T) {
	w := newWorld()
	const want = `// call-site-specific marshaler (cycle table: true, reuse: true)
void marshaler_Foo.send.1(Node s) {
    Message m = new Message();
    CycleTable tbl = new CycleTable();
    if (tbl.seen(s)) { m.append_handle(s); } else {
        m.append_int(s.v); // inlined
        if (tbl.seen(s.next)) { m.append_handle(s.next); } else {
            serialize_Node(m, s.next); // recursive structure, shared body
        }
    }
    m.send();
    delete m;
    wait_for_return_value();
}
`
	if got := w.nodeListPlan(true).Pseudocode(); got != want {
		t.Errorf("reuse pseudocode drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
