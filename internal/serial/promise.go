package serial

import (
	"fmt"

	"cormi/internal/wire"
)

// Promise handle encoding (promise pipelining).
//
// A pipelined call names arguments whose values the caller does not
// have yet: each is a handle onto an earlier promised call's result,
// identified by that call's sequence number (the caller half of the
// (from, seq) call id — the callee fills in `from` from the frame it
// arrived on, so one caller can never reference another's promises).
// The handle section rides the call frame between the argument count
// and the serialized arguments; arguments at promised positions are
// NOT serialized at all — the callee splices them from its promise
// table — so a pipelined frame is smaller than its resolved
// equivalent, not larger.
//
// Handles arrive from the network, so ReadPromises is hardened like
// every other decoder here: the count is capped, argument indices are
// bounds-checked against the declared arity, duplicates are rejected,
// and every rejection wraps wire.ErrMalformedFrame.

// PromiseHandle names one promised argument: Arg is the argument
// position it fills, Seq the producing call's sequence number, Ret the
// index into the producer's return values.
type PromiseHandle struct {
	Arg int32
	Seq int64
	Ret int32
}

// MaxPromiseHandles caps the handle section of one call. Real call
// sites have a handful of arguments; a count past this is hostile.
const MaxPromiseHandles = 64

// WritePromises appends the handle section: a count followed by the
// handles.
func WritePromises(m *wire.Message, ps []PromiseHandle) {
	m.AppendInt32(int32(len(ps)))
	for _, p := range ps {
		m.AppendInt32(p.Arg)
		m.AppendInt64(p.Seq)
		m.AppendInt32(p.Ret)
	}
}

// ReadPromises decodes and validates a handle section for a call
// declaring nargs arguments. Every handle must target a distinct
// argument position inside [0, nargs); Ret must be a plausible return
// index.
func ReadPromises(m *wire.Message, nargs int) ([]PromiseHandle, error) {
	n := int(m.ReadInt32())
	if err := m.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > MaxPromiseHandles {
		return nil, fmt.Errorf("%w: promise handle count %d (cap %d)", wire.ErrMalformedFrame, n, MaxPromiseHandles)
	}
	if n > nargs {
		return nil, fmt.Errorf("%w: %d promise handles for %d arguments", wire.ErrMalformedFrame, n, nargs)
	}
	if n == 0 {
		return nil, nil
	}
	var seen uint64 // nargs ≤ 64 is enforced by the n > nargs check above for promised positions
	ps := make([]PromiseHandle, 0, n)
	for i := 0; i < n; i++ {
		h := PromiseHandle{Arg: m.ReadInt32(), Seq: m.ReadInt64(), Ret: m.ReadInt32()}
		if err := m.Err(); err != nil {
			return nil, err
		}
		if h.Arg < 0 || int(h.Arg) >= nargs {
			return nil, fmt.Errorf("%w: promise handle %d targets argument %d of %d", wire.ErrMalformedFrame, i, h.Arg, nargs)
		}
		if h.Arg < 64 {
			bit := uint64(1) << uint(h.Arg)
			if seen&bit != 0 {
				return nil, fmt.Errorf("%w: duplicate promise handle for argument %d", wire.ErrMalformedFrame, h.Arg)
			}
			seen |= bit
		} else {
			for _, prev := range ps {
				if prev.Arg == h.Arg {
					return nil, fmt.Errorf("%w: duplicate promise handle for argument %d", wire.ErrMalformedFrame, h.Arg)
				}
			}
		}
		if h.Ret < 0 || h.Ret >= MaxPromiseHandles {
			return nil, fmt.Errorf("%w: promise handle %d return index %d", wire.ErrMalformedFrame, i, h.Ret)
		}
		ps = append(ps, h)
	}
	return ps, nil
}
