package serial

import (
	"errors"
	"testing"

	"cormi/internal/wire"
)

func TestPromisesRoundTrip(t *testing.T) {
	in := []PromiseHandle{
		{Arg: 0, Seq: 42, Ret: 0},
		{Arg: 2, Seq: 7, Ret: 3},
		{Arg: 1, Seq: 1 << 40, Ret: 1},
	}
	m := wire.NewMessage(64)
	WritePromises(m, in)
	m.Rewind()
	out, err := ReadPromises(m, 4)
	if err != nil {
		t.Fatalf("ReadPromises: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d handles, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("handle %d: got %+v, want %+v", i, out[i], in[i])
		}
	}

	// Empty section round-trips to nil.
	m2 := wire.NewMessage(8)
	WritePromises(m2, nil)
	m2.Rewind()
	if out, err := ReadPromises(m2, 4); err != nil || out != nil {
		t.Fatalf("empty section: handles=%v err=%v", out, err)
	}
}

func TestReadPromisesRejects(t *testing.T) {
	encode := func(count int32, hs ...PromiseHandle) *wire.Message {
		m := wire.NewMessage(64)
		m.AppendInt32(count)
		for _, h := range hs {
			m.AppendInt32(h.Arg)
			m.AppendInt64(h.Seq)
			m.AppendInt32(h.Ret)
		}
		m.Rewind()
		return m
	}
	cases := []struct {
		name  string
		m     *wire.Message
		nargs int
	}{
		{"negative count", encode(-1), 4},
		{"count over cap", encode(MaxPromiseHandles + 1), MaxPromiseHandles + 2},
		{"more handles than args", encode(3, PromiseHandle{}, PromiseHandle{Arg: 1}, PromiseHandle{Arg: 2}), 2},
		{"arg negative", encode(1, PromiseHandle{Arg: -1}), 4},
		{"arg out of range", encode(1, PromiseHandle{Arg: 4}), 4},
		{"duplicate arg", encode(2, PromiseHandle{Arg: 1}, PromiseHandle{Arg: 1}), 4},
		{"ret negative", encode(1, PromiseHandle{Arg: 0, Ret: -1}), 4},
		{"ret over cap", encode(1, PromiseHandle{Arg: 0, Ret: MaxPromiseHandles}), 4},
		{"truncated section", encode(2, PromiseHandle{Arg: 0}), 4},
	}
	for _, tc := range cases {
		if _, err := ReadPromises(tc.m, tc.nargs); !errors.Is(err, wire.ErrMalformedFrame) {
			t.Errorf("%s: err = %v, want ErrMalformedFrame", tc.name, err)
		}
	}
}
