package serial

import (
	"fmt"

	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// MaxWireValues bounds the value count a message header may claim.
// Real call sites have a handful of arguments/returns; anything larger
// is a corrupted or hostile header, and honoring it would let a single
// bad frame drive an arbitrarily large allocation.
const MaxWireValues = 1 << 16

// MaxDecodeDepth caps readRef recursion. Legitimate graphs recurse one
// level per parent-child edge — the paper's deepest structure is a
// 100-element linked list — so 4096 leaves enormous headroom while
// stopping a hostile frame from exhausting the goroutine stack with a
// marker-per-byte nesting bomb.
const MaxDecodeDepth = 4096

// ReadValues deserializes n values written by WriteValues under the
// same configuration. In site mode, plans must match the writer's
// plans. cached, when non-nil, supplies per-value root objects from a
// previous invocation (the reuse optimization, §3.3); the returned
// roots slice holds the object graphs now backing each reference value
// so the caller can stash them back into the reuse cache.
func ReadValues(m *wire.Message, reg *model.Registry, n int, plans []*Plan, cfg Config, cached []*model.Object, c *stats.Counters) (vals []model.Value, roots []*model.Object, ops simtime.OpCount, err error) {
	return ReadValuesScratch(m, reg, n, plans, cfg, cached, nil, c)
}

// ReadValuesScratch is ReadValues with caller-supplied scratch storage:
// when scratch has capacity for n values it backs the returned vals
// slice, and when cached has exactly n slots it is recycled as the
// returned roots slice (every slot is rewritten, so a stale graph is
// never reported as this message's root). With both supplied — the
// reuse-cache hot path — deserialization allocates nothing beyond
// objects the donor graphs cannot absorb.
func ReadValuesScratch(m *wire.Message, reg *model.Registry, n int, plans []*Plan, cfg Config, cached []*model.Object, scratch []model.Value, c *stats.Counters) (vals []model.Value, roots []*model.Object, ops simtime.OpCount, err error) {
	if n < 0 || n > MaxWireValues {
		return nil, nil, ops, fmt.Errorf("%w: implausible value count %d", wire.ErrMalformedFrame, n)
	}
	if cfg.Mode == ModeSite && len(plans) != n {
		return nil, nil, ops, fmt.Errorf("serial: site mode with %d plans for %d values", len(plans), n)
	}
	rc := getReadCtx(m, reg, c)
	vals, roots, err = readBody(rc, n, plans, cfg, cached, scratch)
	ops = rc.ops
	putReadCtx(rc)
	return vals, roots, ops, err
}

func readBody(rc *readCtx, n int, plans []*Plan, cfg Config, cached []*model.Object, scratch []model.Value) (vals []model.Value, roots []*model.Object, err error) {
	m := rc.m
	if cap(scratch) >= n {
		vals = scratch[:n]
	} else {
		vals = make([]model.Value, n)
	}
	if len(cached) == n {
		// Recycle the reuse-cache slot slice as the roots slice: old
		// donors are read out below before each slot is overwritten.
		roots = cached
	} else {
		roots = make([]*model.Object, n)
	}
	for i := 0; i < n; i++ {
		var kind model.FieldKind
		var np *NodePlan
		var old *model.Object
		if cfg.Mode == ModeClass {
			kind = model.FieldKind(m.ReadU8())
		} else {
			p := plans[i]
			kind = p.Kind
			np = p.Root
			if cfg.Reuse && p.Reusable && i < len(cached) {
				old = cached[i]
			}
		}
		// old is captured; clear the slot so a non-ref value leaves no
		// stale donor behind when roots aliases cached.
		roots[i] = nil
		switch kind {
		case model.FInt:
			vals[i] = model.Int(m.ReadInt64())
		case model.FDouble:
			vals[i] = model.Double(m.ReadFloat64())
		case model.FBool:
			vals[i] = model.Bool(m.ReadBool())
		case model.FString:
			s := m.ReadString()
			if cfg.Mode == ModeClass {
				rc.dynString(len(s))
			}
			vals[i] = model.Str(s)
		case model.FRef:
			o, rerr := readRef(rc, np, old)
			if rerr != nil {
				return nil, nil, rerr
			}
			vals[i] = model.Ref(o)
			roots[i] = o
		default:
			if m.Err() != nil {
				return nil, nil, m.Err()
			}
			return nil, nil, fmt.Errorf("%w: bad value kind %d at index %d", wire.ErrMalformedFrame, kind, i)
		}
	}
	if m.Err() != nil {
		return nil, nil, m.Err()
	}
	return vals, roots, nil
}

// readRef reads one reference written by writeRef. old, when non-nil,
// is the object deserialized at this position by the previous
// invocation; if its shape matches, it is overwritten in place instead
// of allocating (Figure 13).
func readRef(rc *readCtx, np *NodePlan, old *model.Object) (*model.Object, error) {
	if rc.depth++; rc.depth > MaxDecodeDepth {
		rc.depth--
		return nil, fmt.Errorf("%w: reference nesting exceeds depth %d", wire.ErrMalformedFrame, MaxDecodeDepth)
	}
	o, err := readRefBody(rc, np, old)
	rc.depth--
	return o, err
}

func readRefBody(rc *readCtx, np *NodePlan, old *model.Object) (*model.Object, error) {
	switch marker := rc.m.ReadU8(); marker {
	case refNull:
		return nil, nil
	case refHandle:
		h := rc.m.ReadInt32()
		o := rc.resolve(h)
		if o == nil && rc.m.Err() == nil {
			return nil, fmt.Errorf("%w: dangling handle %d (table has %d entries)",
				wire.ErrMalformedFrame, h, len(rc.handles))
		}
		return o, nil
	case refNewDynamic:
		return readDynamicBody(rc)
	case refNew:
		if np == nil {
			return nil, fmt.Errorf("%w: planned object on wire but no plan on reader", wire.ErrMalformedFrame)
		}
		return readPlannedBody(rc, np, old)
	default:
		if rc.m.Err() != nil {
			return nil, rc.m.Err()
		}
		return nil, fmt.Errorf("%w: bad reference marker %d", wire.ErrMalformedFrame, marker)
	}
}

// dynString accounts for deserializing a string through the dynamic
// path: two allocations (String + char[]), two dynamic deserializer
// invocations, two type descriptors to resolve.
func (rc *readCtx) dynString(payload int) {
	rc.ops.SerializerCalls += 2
	rc.ops.TypeOps += 2
	rc.ops.Allocs += 2
	rc.c.AllocObjects.Add(2)
	rc.c.AllocBytes.Add(int64(32 + payload))
}

// dynArrayIntrospect mirrors the write-side array examination cost.
func (rc *readCtx) dynArrayIntrospect(n int) {
	rc.ops.IntrospectOps += int64(n/4) + 1
}

// readDynamicBody reconstructs an object from its explicit class ID —
// the receiver must parse the type information and map the descriptor
// to a class ("hash a type descriptor to vtable pointers", §4).
func readDynamicBody(rc *readCtx) (*model.Object, error) {
	id := rc.m.ReadInt32()
	if rc.m.Err() != nil {
		return nil, rc.m.Err()
	}
	class, ok := rc.reg.ByID(id)
	if !ok {
		return nil, fmt.Errorf("%w: unknown class ID %d", wire.ErrMalformedFrame, id)
	}
	rc.ops.TypeOps++
	rc.ops.SerializerCalls++
	switch class.Kind {
	case model.KObject:
		o := model.New(class)
		rc.register(o)
		rc.allocated(o)
		for i, f := range class.AllFields() {
			rc.ops.IntrospectOps++
			switch f.Kind {
			case model.FInt:
				o.Fields[i] = model.Int(rc.m.ReadInt64())
			case model.FDouble:
				o.Fields[i] = model.Double(rc.m.ReadFloat64())
			case model.FBool:
				o.Fields[i] = model.Bool(rc.m.ReadBool())
			case model.FString:
				s := rc.m.ReadString()
				rc.dynString(len(s))
				o.Fields[i] = model.Str(s)
			case model.FRef:
				child, err := readRef(rc, nil, nil)
				if err != nil {
					return nil, err
				}
				o.Fields[i] = model.Ref(child)
			}
		}
		return o, nil
	case model.KDoubleArray:
		vs := rc.m.ReadFloat64Slice()
		rc.dynArrayIntrospect(len(vs))
		o := &model.Object{Class: class, Doubles: vs}
		rc.register(o)
		rc.allocated(o)
		rc.ops.Elems += int64(len(vs))
		return o, nil
	case model.KIntArray:
		vs := rc.m.ReadInt64Slice()
		rc.dynArrayIntrospect(len(vs))
		o := &model.Object{Class: class, Ints: vs}
		rc.register(o)
		rc.allocated(o)
		rc.ops.Elems += int64(len(vs))
		return o, nil
	case model.KByteArray:
		bs := rc.m.ReadBytes()
		rc.dynArrayIntrospect(len(bs))
		o := &model.Object{Class: class, Bytes: bs}
		rc.register(o)
		rc.allocated(o)
		rc.ops.Elems += int64(len(bs))
		return o, nil
	case model.KRefArray:
		n := int(rc.m.ReadInt32())
		if rc.m.Err() != nil {
			return nil, rc.m.Err()
		}
		// Each element costs at least one marker byte on the wire, so a
		// declared length beyond the remaining payload is a lie — check
		// before the make so a 64-byte hostile frame cannot commit a
		// multi-MB element slice.
		if n < 0 || n > rc.m.Remaining() {
			return nil, fmt.Errorf("%w: ref-array length %d with %d payload bytes remaining",
				wire.ErrMalformedFrame, n, rc.m.Remaining())
		}
		rc.dynArrayIntrospect(n)
		o := &model.Object{Class: class, Refs: make([]*model.Object, n)}
		rc.register(o)
		rc.allocated(o)
		for i := 0; i < n; i++ {
			child, err := readRef(rc, nil, nil)
			if err != nil {
				return nil, err
			}
			o.Refs[i] = child
		}
		return o, nil
	}
	return nil, fmt.Errorf("serial: bad class kind %v", class.Kind)
}

// readPlannedBody reconstructs an object whose class is known from the
// call site plan — no type information is read, field reads are
// inlined, and the previous invocation's object is overwritten in
// place when its shape matches.
func readPlannedBody(rc *readCtx, np *NodePlan, old *model.Object) (*model.Object, error) {
	switch np.Class.Kind {
	case model.KObject:
		var o *model.Object
		if rc.takeDonor(old, np.Class) {
			o = old
			rc.reused(o)
		} else {
			o = model.New(np.Class)
			rc.allocated(o)
		}
		rc.register(o)
		for _, s := range np.Steps {
			switch s.Op {
			case OpInt:
				o.Fields[s.Field] = model.Int(rc.m.ReadInt64())
			case OpDouble:
				o.Fields[s.Field] = model.Double(rc.m.ReadFloat64())
			case OpBool:
				o.Fields[s.Field] = model.Bool(rc.m.ReadBool())
			case OpString:
				o.Fields[s.Field] = model.Str(rc.m.ReadString())
			case OpRef, OpRefDynamic:
				var oldChild *model.Object
				if o == old {
					oldChild = o.Fields[s.Field].O
				}
				target := s.Target
				if s.Op == OpRefDynamic {
					target = nil
					oldChild = nil
				}
				child, err := readRef(rc, target, oldChild)
				if err != nil {
					return nil, err
				}
				o.Fields[s.Field] = model.Ref(child)
				continue
			}
			rc.ops.InlinedWrites++
		}
		return o, nil
	case model.KDoubleArray:
		var dst []float64
		if rc.takeDonor(old, np.Class) {
			dst = old.Doubles
		}
		vs, reusedSlice := rc.m.ReadFloat64SliceInto(dst)
		rc.ops.Elems += int64(len(vs))
		rc.ops.InlinedWrites++
		if reusedSlice {
			old.Doubles = vs
			rc.reused(old)
			rc.register(old)
			return old, nil
		}
		o := &model.Object{Class: np.Class, Doubles: vs}
		rc.allocated(o)
		rc.register(o)
		return o, nil
	case model.KIntArray:
		var dst []int64
		if rc.takeDonor(old, np.Class) {
			dst = old.Ints
		}
		vs, reusedSlice := rc.m.ReadInt64SliceInto(dst)
		rc.ops.Elems += int64(len(vs))
		rc.ops.InlinedWrites++
		if reusedSlice {
			old.Ints = vs
			rc.reused(old)
			rc.register(old)
			return old, nil
		}
		o := &model.Object{Class: np.Class, Ints: vs}
		rc.allocated(o)
		rc.register(o)
		return o, nil
	case model.KByteArray:
		// Zero-copy view into the frame: the reuse path copies straight
		// from the frame into the donor's array (one copy instead of
		// two); only the allocation path materializes a private slice.
		bs := rc.m.ReadBytesView()
		rc.ops.Elems += int64(len(bs))
		rc.ops.InlinedWrites++
		if rc.takeDonor(old, np.Class) && len(old.Bytes) == len(bs) {
			copy(old.Bytes, bs)
			rc.reused(old)
			rc.register(old)
			return old, nil
		}
		o := &model.Object{Class: np.Class, Bytes: append([]byte(nil), bs...)}
		rc.allocated(o)
		rc.register(o)
		return o, nil
	case model.KRefArray:
		n := int(rc.m.ReadInt32())
		if rc.m.Err() != nil {
			return nil, rc.m.Err()
		}
		// Same payload bound as the dynamic path: ≥1 marker byte per
		// element, so the declared length can never exceed what's left.
		if n < 0 || n > rc.m.Remaining() {
			return nil, fmt.Errorf("%w: ref-array length %d with %d payload bytes remaining",
				wire.ErrMalformedFrame, n, rc.m.Remaining())
		}
		rc.ops.InlinedWrites++
		var o *model.Object
		reuse := rc.takeDonor(old, np.Class) && len(old.Refs) == n
		if reuse {
			o = old
			rc.reused(o)
		} else {
			o = &model.Object{Class: np.Class, Refs: make([]*model.Object, n)}
			rc.allocated(o)
		}
		rc.register(o)
		for i := 0; i < n; i++ {
			var oldChild *model.Object
			if reuse {
				oldChild = o.Refs[i]
			}
			child, err := readRef(rc, np.Elem, oldChild)
			if err != nil {
				return nil, err
			}
			o.Refs[i] = child
		}
		return o, nil
	}
	return nil, fmt.Errorf("serial: bad plan class kind %v", np.Class.Kind)
}
