package serial

import (
	"sync"

	"cormi/internal/model"
)

// ReuseCache keeps the object graphs deserialized by the previous
// invocation of one call site, so the next invocation can overwrite
// them in place (§3.3). It implements the multithreading guard of
// Figure 13: Take removes the cached graphs (leaving nil behind), so a
// concurrent invocation of the same call site simply allocates fresh
// objects instead of racing on the cache.
type ReuseCache struct {
	mu    sync.Mutex
	slots []*model.Object
}

// Take removes and returns the cached per-value roots (nil on the
// first invocation or while another thread holds them).
func (rc *ReuseCache) Take() []*model.Object {
	rc.mu.Lock()
	s := rc.slots
	rc.slots = nil
	rc.mu.Unlock()
	return s
}

// Put stores the roots deserialized by this invocation for the next
// one. If another invocation already put its roots back, the newer
// ones win (either graph is a valid donor).
func (rc *ReuseCache) Put(slots []*model.Object) {
	rc.mu.Lock()
	rc.slots = slots
	rc.mu.Unlock()
}
