package serial

import (
	"sync"

	"cormi/internal/model"
)

// ReuseCache keeps the object graphs deserialized by the previous
// invocation of one call site, so the next invocation can overwrite
// them in place (§3.3). It implements the multithreading guard of
// Figure 13: Take removes the cached graphs (leaving nil behind), so a
// concurrent invocation of the same call site simply allocates fresh
// objects instead of racing on the cache.
//
// Alongside the donor roots, the cache recycles a values scratch slice
// for ReadValuesScratch, so the deserialization hot path needs neither
// a roots nor a vals allocation in steady state.
type ReuseCache struct {
	mu    sync.Mutex
	slots []*model.Object
	vals  []model.Value
}

// Take removes and returns the cached per-value roots and the values
// scratch slice (nil on the first invocation or while another thread
// holds them).
func (rc *ReuseCache) Take() ([]*model.Object, []model.Value) {
	rc.mu.Lock()
	s, v := rc.slots, rc.vals
	rc.slots, rc.vals = nil, nil
	rc.mu.Unlock()
	return s, v
}

// Put stores the roots deserialized by this invocation (and the vals
// scratch backing them) for the next one. A nil argument leaves the
// corresponding slot untouched — a concurrent holder may still return
// it; for non-nil arguments the newer value wins (either graph is a
// valid donor).
func (rc *ReuseCache) Put(slots []*model.Object, vals []model.Value) {
	rc.mu.Lock()
	if slots != nil {
		rc.slots = slots
	}
	if vals != nil {
		rc.vals = vals
	}
	rc.mu.Unlock()
}
