package serial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cormi/internal/model"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// TestRandomBytesNeverPanic: deserializing arbitrary garbage must
// return an error (or garbage values), never panic or hang — a
// received network message is untrusted input.
func TestRandomBytesNeverPanic(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	var c stats.Counters
	f := func(payload []byte, n uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %x: %v", payload, r)
				ok = false
			}
		}()
		nvals := int(n%4) + 1
		plans := make([]*Plan, nvals)
		for i := range plans {
			plans[i] = plan
		}
		_, _, _, _ = ReadValues(wire.FromBytes(payload), w.reg, nvals, plans, Config{Mode: ModeSite}, nil, &c)
		_, _, _, _ = ReadValues(wire.FromBytes(payload), w.reg, nvals, nil, Config{Mode: ModeClass}, nil, &c)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedValidMessagesNeverPanic: every prefix of a valid
// message must fail cleanly.
func TestTruncatedValidMessagesNeverPanic(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	head := w.makeList(20)
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(head)}, []*Plan{plan}, Config{Mode: ModeSite}, &c); err != nil {
		t.Fatal(err)
	}
	full := m.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := ReadValues(wire.FromBytes(full[:cut]), w.reg, 1,
			[]*Plan{plan}, Config{Mode: ModeSite}, nil, &c); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}

// TestBitFlippedMessagesNeverPanic: single-bit corruption of a valid
// message either errors or decodes to some value, but never panics.
func TestBitFlippedMessagesNeverPanic(t *testing.T) {
	w := newWorld()
	head := w.makeList(10)
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(head)}, nil, Config{Mode: ModeClass}, &c); err != nil {
		t.Fatal(err)
	}
	full := m.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), full...)
		corrupt[rng.Intn(len(corrupt))] ^= 1 << uint(rng.Intn(8))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on bit flip: %v", r)
				}
			}()
			_, _, _, _ = ReadValues(wire.FromBytes(corrupt), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c)
		}()
	}
}

// TestImplausibleValueCountRejected: a corrupt or hostile header must
// not drive a huge allocation through the claimed value count.
func TestImplausibleValueCountRejected(t *testing.T) {
	w := newWorld()
	var c stats.Counters
	for _, n := range []int{-1, MaxWireValues + 1, 1 << 30} {
		if _, _, _, err := ReadValues(wire.FromBytes(nil), w.reg, n, nil, Config{Mode: ModeClass}, nil, &c); err == nil {
			t.Errorf("value count %d accepted", n)
		}
	}
}

// TestErroredMessageReturnsError: once a message is in its sticky error
// state (e.g. after a short read), ReadValues must surface the error —
// never hand back zero-value object graphs as if deserialization
// succeeded.
func TestErroredMessageReturnsError(t *testing.T) {
	w := newWorld()
	var c stats.Counters
	m := wire.FromBytes([]byte{1})
	m.ReadInt64() // short read: poisons the message
	if m.Err() == nil {
		t.Fatal("short read did not poison the message")
	}
	vals, _, _, err := ReadValues(m, w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c)
	if err == nil {
		t.Fatalf("errored message accepted, returned %v", vals)
	}
}
