// Package serial implements both serializer generations that the paper
// compares:
//
//   - "class" mode (the baseline of KaRMI/Manta): one generated
//     serializer per class, invoked dynamically for every object;
//     per-object type information on the wire; cycle hash-table always
//     created.
//   - "site" mode (the paper's contribution, §3.1): a serialization
//     Plan generated per RMI call site by the compiler
//     (internal/core). Field writes are inlined, statically known
//     referents carry no type information and no dynamic serializer
//     invocation, the cycle table is omitted when the heap analysis
//     proves the argument graphs acyclic (§3.2), and deserialized
//     object graphs are reused across calls when escape analysis
//     permits (§3.3, Figure 13).
//
// All operations are tallied into stats.Counters (for Tables 4/6/8) and
// simtime.OpCount (for the virtual-time cost model).
package serial

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// Mode selects the serializer generation.
type Mode uint8

const (
	// ModeClass is per-class dynamic serialization (baseline).
	ModeClass Mode = iota
	// ModeSite is per-call-site plan-driven serialization.
	ModeSite
)

func (m Mode) String() string {
	if m == ModeClass {
		return "class"
	}
	return "site"
}

// Reference markers on the wire.
const (
	refNull       = 0 // null reference
	refNew        = 1 // object follows, type known from the call site plan
	refHandle     = 2 // int32 handle to a previously transmitted object
	refNewDynamic = 3 // object follows with explicit class ID (class mode
	// or plan fallback for polymorphic references)
)

// writeCtx bundles the write-side state of one message. Contexts are
// pooled: the embedded writeTable keeps its map across messages
// (cleared, not reallocated), so serializing in steady state creates no
// per-message context garbage.
type writeCtx struct {
	m     *wire.Message
	c     *stats.Counters
	ops   simtime.OpCount
	table *writeTable // nil when cycle detection is eliminated
	wt    writeTable  // reusable backing storage for table
	link  *LinkPlans  // negotiated per-link demotions; nil = all plans agree
}

var writeCtxPool = sync.Pool{New: func() any { return new(writeCtx) }}

func getWriteCtx(m *wire.Message, c *stats.Counters) *writeCtx {
	w := writeCtxPool.Get().(*writeCtx)
	w.m, w.c = m, c
	w.ops = simtime.OpCount{}
	w.table = nil
	w.link = nil
	return w
}

func putWriteCtx(w *writeCtx) {
	w.m, w.c, w.table, w.link = nil, nil, nil, nil
	if w.wt.m != nil {
		clear(w.wt.m)
		w.wt.next = 0
	}
	writeCtxPool.Put(w)
}

// readCtx bundles the read-side state of one message. Contexts are
// pooled: the handles slice and usedDonors map keep their capacity
// across messages (entries cleared on release so no object graph is
// pinned by the pool).
type readCtx struct {
	m       *wire.Message
	reg     *model.Registry
	c       *stats.Counters
	ops     simtime.OpCount
	handles []*model.Object // objects in transmission order, for refHandle
	// usedDonors guards the reuse walk: a cached graph may contain
	// sharing (it was itself deserialized from a message with
	// handles), so the same donor object could otherwise be offered to
	// two distinct wire objects and collapse the new graph.
	usedDonors map[*model.Object]bool
	// budget is the remaining per-frame allocation allowance in bytes
	// (decodeBudgetBase + decodeBudgetPerByte per payload byte). Every
	// object the decoder materializes is charged through allocated();
	// exhaustion poisons the message with a typed ErrMalformedFrame so
	// a small hostile frame cannot commit large memory. Legitimate
	// frames sit far under the budget: decoded bytes are proportional
	// to payload bytes with a small constant.
	budget int64
	// depth is the current readRef recursion depth, capped at
	// MaxDecodeDepth to stop stack-exhaustion nesting bombs.
	depth int
}

// Decode budgets. Vars rather than consts so the hardening tests can
// tighten them; the decode hot path reads them once per frame.
var (
	decodeBudgetBase    int64 = 4096 // flat allowance so tiny frames can decode small graphs
	decodeBudgetPerByte int64 = 64   // allowance per payload byte
)

// readCtx pool debug gauges, mirroring the wire buffer pool's: a
// growing Gets-Puts gap means an error path returned without releasing
// its context (and whatever object graph it pinned).
var (
	readCtxGets atomic.Int64
	readCtxPuts atomic.Int64
)

// CtxStats is a snapshot of the read-context pool's debug gauges.
type CtxStats struct {
	Gets        int64
	Puts        int64
	Outstanding int64
}

// ReadCtxStats reports the read-context pool's get/put balance.
func ReadCtxStats() CtxStats {
	g, p := readCtxGets.Load(), readCtxPuts.Load()
	return CtxStats{Gets: g, Puts: p, Outstanding: g - p}
}

var readCtxPool = sync.Pool{New: func() any { return new(readCtx) }}

func getReadCtx(m *wire.Message, reg *model.Registry, c *stats.Counters) *readCtx {
	readCtxGets.Add(1)
	rc := readCtxPool.Get().(*readCtx)
	rc.m, rc.reg, rc.c = m, reg, c
	rc.ops = simtime.OpCount{}
	rc.budget = decodeBudgetBase + decodeBudgetPerByte*int64(m.Remaining())
	rc.depth = 0
	return rc
}

func putReadCtx(rc *readCtx) {
	readCtxPuts.Add(1)
	rc.m, rc.reg, rc.c = nil, nil, nil
	for i := range rc.handles {
		rc.handles[i] = nil
	}
	rc.handles = rc.handles[:0]
	if rc.usedDonors != nil {
		clear(rc.usedDonors)
	}
	readCtxPool.Put(rc)
}

// takeDonor claims old as the in-place-overwrite target for one wire
// object, refusing donors of the wrong class or donors already claimed
// this message.
func (rc *readCtx) takeDonor(old *model.Object, class *model.Class) bool {
	if old == nil || old.Class != class {
		return false
	}
	if rc.usedDonors == nil {
		rc.usedDonors = make(map[*model.Object]bool)
	}
	if rc.usedDonors[old] {
		return false
	}
	rc.usedDonors[old] = true
	return true
}

func (rc *readCtx) register(o *model.Object) {
	if len(rc.handles) >= MaxHandleEntries {
		// Can't return an error from here; poison the message so every
		// further read yields zeros and the top-level decode surfaces
		// the typed error. The half-built graph is dropped with the
		// frame.
		rc.m.Fail(fmt.Errorf("%w: handle table overflow (%d entries, cap %d)",
			wire.ErrMalformedFrame, len(rc.handles)+1, MaxHandleEntries))
		return
	}
	rc.handles = append(rc.handles, o)
}

func (rc *readCtx) resolve(h int32) *model.Object {
	if h < 0 || int(h) >= len(rc.handles) {
		return nil
	}
	return rc.handles[h]
}

// allocated records a deserialization allocation and charges it
// against the frame's allocation budget; exhaustion poisons the
// message with a typed error (see readCtx.budget).
func (rc *readCtx) allocated(o *model.Object) {
	sz := o.SizeBytes()
	rc.budget -= sz
	if rc.budget < 0 {
		rc.m.Fail(fmt.Errorf("%w: frame exceeded its decode allocation budget", wire.ErrMalformedFrame))
	}
	rc.c.AllocObjects.Add(1)
	rc.c.AllocBytes.Add(sz)
	rc.ops.Allocs++
}

// reused records an in-place reuse of a cached object.
func (rc *readCtx) reused(o *model.Object) {
	rc.c.ReusedObjs.Add(1)
	rc.c.ReusedBytes.Add(o.SizeBytes())
}
