package serial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cormi/internal/model"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// richWorld adds a class covering every field kind plus primitive and
// reference arrays.
type richWorld struct {
	reg    *model.Registry
	g      *model.Class
	ia, ba *model.Class
	gArr   *model.Class
}

func newRichWorld() *richWorld {
	reg := model.NewRegistry()
	g := reg.MustDefine("G", nil,
		model.Field{Name: "i", Kind: model.FInt},
		model.Field{Name: "d", Kind: model.FDouble},
		model.Field{Name: "b", Kind: model.FBool},
		model.Field{Name: "s", Kind: model.FString},
	)
	g.Fields = append(g.Fields,
		model.Field{Name: "l", Kind: model.FRef, Class: g},
		model.Field{Name: "r", Kind: model.FRef, Class: g},
	)
	return &richWorld{reg: reg, g: g, ia: reg.IntArray(), ba: reg.ByteArray(), gArr: reg.ArrayOf(g)}
}

func (w *richWorld) randomGraph(rng *rand.Rand, n int) *model.Object {
	if n <= 0 {
		return nil
	}
	g, _ := w.reg.ByName("G")
	nodes := make([]*model.Object, n)
	for i := range nodes {
		o := model.New(g)
		o.Set("i", model.Int(rng.Int63n(100)))
		o.Set("d", model.Double(rng.Float64()))
		o.Set("b", model.Bool(rng.Intn(2) == 0))
		o.Set("s", model.Str(string(rune('a'+rng.Intn(26)))))
		nodes[i] = o
	}
	for _, o := range nodes {
		if rng.Intn(3) != 0 {
			o.Set("l", model.Ref(nodes[rng.Intn(n)]))
		}
		if rng.Intn(3) != 0 {
			o.Set("r", model.Ref(nodes[rng.Intn(n)]))
		}
	}
	return nodes[0]
}

// TestClassModeRandomGraphRoundTrip: arbitrary graphs (sharing,
// cycles, every field kind) survive the baseline serializer.
func TestClassModeRandomGraphRoundTrip(t *testing.T) {
	w := newRichWorld()
	var c stats.Counters
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := w.randomGraph(rng, int(size%25)+1)
		m := wire.NewMessage(0)
		if _, err := WriteValues(m, []model.Value{model.Ref(g)}, nil, Config{Mode: ModeClass}, &c); err != nil {
			return false
		}
		got, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c)
		if err != nil {
			return false
		}
		return model.DeepEqual(g, got[0].O)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSiteModeRandomGraphRoundTrip: the same graphs through a
// compiled-style plan (recursive, needs cycle table) — and a third
// pass re-reading into the previous roots (reuse path).
func TestSiteModeRandomGraphRoundTrip(t *testing.T) {
	w := newRichWorld()
	g, _ := w.reg.ByName("G")
	np := &NodePlan{Class: g}
	np.Steps = []Step{
		{Op: OpInt, Field: 0, FieldName: "i"},
		{Op: OpDouble, Field: 1, FieldName: "d"},
		{Op: OpBool, Field: 2, FieldName: "b"},
		{Op: OpString, Field: 3, FieldName: "s"},
		{Op: OpRef, Field: 4, FieldName: "l", Target: np},
		{Op: OpRef, Field: 5, FieldName: "r", Target: np},
	}
	plan := &Plan{Site: "q", Kind: model.FRef, Root: np, NeedCycle: true, Reusable: true}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: ModeSite, Reuse: true}
	var c stats.Counters
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		graph := w.randomGraph(rng, int(size%25)+1)
		m := wire.NewMessage(0)
		if _, err := WriteValues(m, []model.Value{model.Ref(graph)}, []*Plan{plan}, cfg, &c); err != nil {
			return false
		}
		got, roots, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, []*Plan{plan}, cfg, nil, &c)
		if err != nil || !model.DeepEqual(graph, got[0].O) {
			return false
		}
		// Reuse pass: a different random graph lands on the cached one.
		graph2 := w.randomGraph(rng, int(size%25)+1)
		m2 := wire.NewMessage(0)
		if _, err := WriteValues(m2, []model.Value{model.Ref(graph2)}, []*Plan{plan}, cfg, &c); err != nil {
			return false
		}
		got2, _, _, err := ReadValues(wire.FromBytes(m2.Bytes()), w.reg, 1, []*Plan{plan}, cfg, roots, &c)
		if err != nil {
			return false
		}
		return model.DeepEqual(graph2, got2[0].O)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPrimitiveArrayRoundTrips(t *testing.T) {
	w := newRichWorld()
	var c stats.Counters

	ia := model.NewArray(w.ia, 4)
	copy(ia.Ints, []int64{1, -2, 3, 1 << 40})
	ba := model.NewArray(w.ba, 3)
	copy(ba.Bytes, []byte{7, 8, 9})

	// Dynamic (class) mode.
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(ia), model.Ref(ba)}, nil, Config{Mode: ModeClass}, &c); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 2, nil, Config{Mode: ModeClass}, nil, &c)
	if err != nil || !model.DeepEqual(ia, got[0].O) || !model.DeepEqual(ba, got[1].O) {
		t.Fatalf("class-mode primitive arrays: %v", err)
	}

	// Planned with reuse: int array payload reused in place.
	planI := &Plan{Site: "pi", Kind: model.FRef, Root: &NodePlan{Class: w.ia}, Reusable: true}
	planB := &Plan{Site: "pb", Kind: model.FRef, Root: &NodePlan{Class: w.ba}, Reusable: true}
	cfg := Config{Mode: ModeSite, CycleElim: true, Reuse: true}
	m2 := wire.NewMessage(0)
	if _, err := WriteValues(m2, []model.Value{model.Ref(ia), model.Ref(ba)}, []*Plan{planI, planB}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	got2, roots, _, err := ReadValues(wire.FromBytes(m2.Bytes()), w.reg, 2, []*Plan{planI, planB}, cfg, nil, &c)
	if err != nil || !model.DeepEqual(ia, got2[0].O) || !model.DeepEqual(ba, got2[1].O) {
		t.Fatalf("planned primitive arrays: %v", err)
	}
	got3, _, _, err := ReadValues(wire.FromBytes(m2.Bytes()), w.reg, 2, []*Plan{planI, planB}, cfg, roots, &c)
	if err != nil {
		t.Fatal(err)
	}
	if got3[0].O != got2[0].O || got3[1].O != got2[1].O {
		t.Fatal("primitive arrays not reused")
	}
}

func TestRefArrayPlans(t *testing.T) {
	w := newRichWorld()
	g, _ := w.reg.ByName("G")
	elemNP := &NodePlan{Class: g, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "i"}}}
	// Elements planned.
	arrNP := &NodePlan{Class: w.gArr, Elem: elemNP}
	plan := &Plan{Site: "ra", Kind: model.FRef, Root: arrNP, NeedCycle: true, Reusable: true}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	arr := model.NewArray(w.gArr, 3)
	for i := range arr.Refs {
		o := model.New(g)
		o.Set("i", model.Int(int64(i)))
		arr.Refs[i] = o
	}
	arr.Refs[2] = arr.Refs[0] // sharing inside the array

	var c stats.Counters
	cfg := Config{Mode: ModeSite, Reuse: true}
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(arr)}, []*Plan{plan}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	got, roots, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, []*Plan{plan}, cfg, nil, &c)
	if err != nil || !model.DeepEqual(arr, got[0].O) {
		t.Fatalf("ref array round trip: %v", err)
	}
	if got[0].O.Refs[2] != got[0].O.Refs[0] {
		t.Fatal("array element sharing lost")
	}
	// Reuse pass keeps the same backing objects.
	m2 := wire.NewMessage(0)
	if _, err := WriteValues(m2, []model.Value{model.Ref(arr)}, []*Plan{plan}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	got2, _, _, err := ReadValues(wire.FromBytes(m2.Bytes()), w.reg, 1, []*Plan{plan}, cfg, roots, &c)
	if err != nil || got2[0].O != got[0].O {
		t.Fatalf("ref array reuse: %v", err)
	}

	// Dynamic elements (Elem == nil) still round-trip.
	dynArrNP := &NodePlan{Class: w.gArr}
	dplan := &Plan{Site: "rd", Kind: model.FRef, Root: dynArrNP, NeedCycle: true}
	m3 := wire.NewMessage(0)
	if _, err := WriteValues(m3, []model.Value{model.Ref(arr)}, []*Plan{dplan}, Config{Mode: ModeSite}, &c); err != nil {
		t.Fatal(err)
	}
	got3, _, _, err := ReadValues(wire.FromBytes(m3.Bytes()), w.reg, 1, []*Plan{dplan}, Config{Mode: ModeSite}, nil, &c)
	if err != nil || !model.DeepEqual(arr, got3[0].O) {
		t.Fatalf("dynamic-element array round trip: %v", err)
	}
}

func TestClassModeStringValuesCountStringObjects(t *testing.T) {
	w := newRichWorld()
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Str("hello")}, nil, Config{Mode: ModeClass}, &c); err != nil {
		t.Fatal(err)
	}
	// Java strings are two heap objects on the dynamic path.
	if s := c.Snapshot(); s.SerializerCalls != 2 || s.TypeOps != 2 {
		t.Fatalf("string-object accounting: %+v", s)
	}
	got, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c)
	if err != nil || got[0].S != "hello" {
		t.Fatalf("string round trip: %v %v", got, err)
	}
	if s := c.Snapshot(); s.AllocObjects != 2 {
		t.Fatalf("string read allocation accounting: %+v", s)
	}
}
