package serial

import (
	"strings"
	"testing"
	"testing/quick"

	"cormi/internal/model"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// testWorld builds a registry with the classes used across these
// tests: a linked-list Node, a Pair with two Leaf refs, and a Derived
// subclass of Base (the Figure 5 situation).
type testWorld struct {
	reg                              *model.Registry
	node, pair, leaf, base, derived1 *model.Class
	derived2                         *model.Class
}

func newWorld() *testWorld {
	w := &testWorld{reg: model.NewRegistry()}
	w.node = w.reg.MustDefine("Node", nil, model.Field{Name: "v", Kind: model.FInt})
	// Self-referential field added after definition (class object
	// identity needed for the field's static type).
	w.node.Fields = append(w.node.Fields, model.Field{Name: "next", Kind: model.FRef, Class: w.node})
	w.leaf = w.reg.MustDefine("Leaf", nil, model.Field{Name: "x", Kind: model.FInt})
	w.pair = w.reg.MustDefine("Pair", nil,
		model.Field{Name: "l", Kind: model.FRef, Class: w.leaf},
		model.Field{Name: "r", Kind: model.FRef, Class: w.leaf},
	)
	w.base = w.reg.MustDefine("Base", nil)
	w.derived1 = w.reg.MustDefine("Derived1", w.base, model.Field{Name: "data", Kind: model.FInt})
	w.derived2 = w.reg.MustDefine("Derived2", w.base,
		model.Field{Name: "p", Kind: model.FRef, Class: w.derived1})
	return w
}

// nodeListPlan builds the plan the compiler would emit for sending a
// Node linked list: recursive, needs cycle detection, reusable.
func (w *testWorld) nodeListPlan(reusable bool) *Plan {
	np := &NodePlan{Class: w.node}
	np.Steps = []Step{
		{Op: OpInt, Field: 0, FieldName: "v"},
		{Op: OpRef, Field: 1, FieldName: "next", Target: np},
	}
	return &Plan{Site: "Foo.send.1", Kind: model.FRef, Root: np, NeedCycle: true, Reusable: reusable}
}

func (w *testWorld) pairPlan() *Plan {
	leafNP := &NodePlan{Class: w.leaf, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "x"}}}
	pairNP := &NodePlan{Class: w.pair, Steps: []Step{
		{Op: OpRef, Field: 0, FieldName: "l", Target: leafNP},
		{Op: OpRef, Field: 1, FieldName: "r", Target: leafNP},
	}}
	// Two fields may alias (Figure 8) — conservative plan keeps cycle
	// detection on.
	return &Plan{Site: "Foo.pair.1", Kind: model.FRef, Root: pairNP, NeedCycle: true}
}

func (w *testWorld) makeList(n int) *model.Object {
	var head *model.Object
	for i := n - 1; i >= 0; i-- {
		x := model.New(w.node)
		x.Set("v", model.Int(int64(i)))
		x.Set("next", model.Ref(head))
		head = x
	}
	return head
}

func roundTrip(t *testing.T, w *testWorld, vals []model.Value, plans []*Plan, cfg Config, cached []*model.Object) ([]model.Value, []*model.Object, *stats.Counters) {
	t.Helper()
	var c stats.Counters
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, vals, plans, cfg, &c); err != nil {
		t.Fatalf("WriteValues: %v", err)
	}
	got, roots, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, len(vals), plans, cfg, cached, &c)
	if err != nil {
		t.Fatalf("ReadValues: %v", err)
	}
	return got, roots, &c
}

func TestPrimitiveRoundTripBothModes(t *testing.T) {
	w := newWorld()
	vals := []model.Value{model.Int(-7), model.Double(2.5), model.Bool(true), model.Str("abc")}
	for _, cfg := range []Config{{Mode: ModeClass}, {Mode: ModeSite}} {
		plans := []*Plan{
			PrimitivePlan("s", model.FInt), PrimitivePlan("s", model.FDouble),
			PrimitivePlan("s", model.FBool), PrimitivePlan("s", model.FString),
		}
		got, _, _ := roundTrip(t, w, vals, plans, cfg, nil)
		for i := range vals {
			if !got[i].Equal(vals[i]) {
				t.Fatalf("mode %v: val %d = %v, want %v", cfg.Mode, i, got[i], vals[i])
			}
		}
	}
}

func TestDynamicObjectGraphRoundTrip(t *testing.T) {
	w := newWorld()
	head := w.makeList(10)
	got, _, c := roundTrip(t, w, []model.Value{model.Ref(head)}, nil, Config{Mode: ModeClass}, nil)
	if !model.DeepEqual(head, got[0].O) {
		t.Fatal("list round trip mismatch")
	}
	if got[0].O == head {
		t.Fatal("deserialization aliased the source object")
	}
	s := c.Snapshot()
	if s.SerializerCalls != 10 {
		t.Fatalf("SerializerCalls = %d, want 10 (one per node)", s.SerializerCalls)
	}
	if s.TypeBytes < 40 {
		t.Fatalf("TypeBytes = %d, want >= 40 (class ID per node)", s.TypeBytes)
	}
	if s.CycleTables != 1 || s.CycleLookups != 10 {
		t.Fatalf("cycle stats = %d tables %d lookups", s.CycleTables, s.CycleLookups)
	}
	if s.AllocObjects != 10 {
		t.Fatalf("AllocObjects = %d", s.AllocObjects)
	}
}

func TestDynamicSharingAndCycles(t *testing.T) {
	w := newWorld()
	// Diamond sharing.
	shared := model.New(w.leaf)
	shared.Set("x", model.Int(5))
	p := model.New(w.pair)
	p.Set("l", model.Ref(shared))
	p.Set("r", model.Ref(shared))
	got, _, _ := roundTrip(t, w, []model.Value{model.Ref(p)}, nil, Config{Mode: ModeClass}, nil)
	gp := got[0].O
	if gp.GetRef("l") != gp.GetRef("r") {
		t.Fatal("sharing lost over the wire")
	}

	// True cycle.
	a := model.New(w.node)
	b := model.New(w.node)
	a.Set("next", model.Ref(b))
	b.Set("next", model.Ref(a))
	got, _, _ = roundTrip(t, w, []model.Value{model.Ref(a)}, nil, Config{Mode: ModeClass}, nil)
	ga := got[0].O
	if ga.GetRef("next").GetRef("next") != ga {
		t.Fatal("cycle lost over the wire")
	}
}

func TestAliasingAcrossArguments(t *testing.T) {
	// Figure 8: the same object passed twice must arrive as one object.
	w := newWorld()
	b := model.New(w.leaf)
	b.Set("x", model.Int(9))
	got, _, _ := roundTrip(t, w, []model.Value{model.Ref(b), model.Ref(b)}, nil, Config{Mode: ModeClass}, nil)
	if got[0].O != got[1].O {
		t.Fatal("cross-argument aliasing lost")
	}
}

func TestSiteModeListRoundTripAndSavings(t *testing.T) {
	w := newWorld()
	head := w.makeList(100)
	plan := w.nodeListPlan(false)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	var cClass, cSite stats.Counters
	mClass := wire.NewMessage(0)
	if _, err := WriteValues(mClass, []model.Value{model.Ref(head)}, nil, Config{Mode: ModeClass}, &cClass); err != nil {
		t.Fatal(err)
	}
	mSite := wire.NewMessage(0)
	if _, err := WriteValues(mSite, []model.Value{model.Ref(head)}, []*Plan{plan}, Config{Mode: ModeSite}, &cSite); err != nil {
		t.Fatal(err)
	}

	if mSite.Len() >= mClass.Len() {
		t.Fatalf("site message (%d B) not smaller than class message (%d B)", mSite.Len(), mClass.Len())
	}
	if s := cSite.Snapshot(); s.SerializerCalls != 0 || s.TypeBytes != 0 {
		t.Fatalf("site mode leaked dynamic work: %+v", s)
	}
	if s := cClass.Snapshot(); s.SerializerCalls != 100 {
		t.Fatalf("class mode SerializerCalls = %d", s.SerializerCalls)
	}

	got, _, _, err := ReadValues(wire.FromBytes(mSite.Bytes()), w.reg, 1, []*Plan{plan}, Config{Mode: ModeSite}, nil, &cSite)
	if err != nil {
		t.Fatal(err)
	}
	if !model.DeepEqual(head, got[0].O) {
		t.Fatal("site mode list round trip mismatch")
	}
}

func TestSiteModeCyclicListStillWorks(t *testing.T) {
	w := newWorld()
	head := w.makeList(5)
	// Close the list into a ring.
	tail := head
	for tail.GetRef("next") != nil {
		tail = tail.GetRef("next")
	}
	tail.Set("next", model.Ref(head))
	plan := w.nodeListPlan(false)
	got, _, _ := roundTrip(t, w, []model.Value{model.Ref(head)}, []*Plan{plan}, Config{Mode: ModeSite}, nil)
	if !model.DeepEqual(head, got[0].O) {
		t.Fatal("ring round trip mismatch")
	}
	if !model.HasCycle(got[0].O) {
		t.Fatal("ring arrived acyclic")
	}
}

func TestCycleEliminationSkipsTable(t *testing.T) {
	w := newWorld()
	leafNP := &NodePlan{Class: w.leaf, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "x"}}}
	plan := &Plan{Site: "s", Kind: model.FRef, Root: leafNP, NeedCycle: false}
	o := model.New(w.leaf)

	// site without cycle elimination: table created.
	_, _, c := roundTrip(t, w, []model.Value{model.Ref(o)}, []*Plan{plan}, Config{Mode: ModeSite}, nil)
	if c.Snapshot().CycleTables != 1 {
		t.Fatalf("expected table without CycleElim, got %d", c.Snapshot().CycleTables)
	}
	// site+cycle: no table, no lookups.
	_, _, c = roundTrip(t, w, []model.Value{model.Ref(o)}, []*Plan{plan}, Config{Mode: ModeSite, CycleElim: true}, nil)
	if s := c.Snapshot(); s.CycleTables != 0 || s.CycleLookups != 0 {
		t.Fatalf("cycle work despite elimination: %+v", s)
	}
	// A plan that needs cycles keeps the table even under CycleElim.
	plan.NeedCycle = true
	_, _, c = roundTrip(t, w, []model.Value{model.Ref(o)}, []*Plan{plan}, Config{Mode: ModeSite, CycleElim: true}, nil)
	if c.Snapshot().CycleTables != 1 {
		t.Fatal("NeedCycle plan lost its table")
	}
}

func TestReuseOverwritesInPlace(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(true)
	cfg := Config{Mode: ModeSite, CycleElim: true, Reuse: true}
	head := w.makeList(20)

	// First call: everything allocated.
	vals, roots, c := roundTrip(t, w, []model.Value{model.Ref(head)}, []*Plan{plan}, cfg, nil)
	if s := c.Snapshot(); s.AllocObjects != 20 || s.ReusedObjs != 0 {
		t.Fatalf("first call: %+v", s)
	}
	first := vals[0].O

	// Second call with the first call's roots cached: zero allocations.
	head2 := w.makeList(20)
	head2.Set("v", model.Int(999))
	vals2, _, c2 := roundTrip(t, w, []model.Value{model.Ref(head2)}, []*Plan{plan}, cfg, roots)
	if s := c2.Snapshot(); s.AllocObjects != 0 || s.ReusedObjs != 20 {
		t.Fatalf("second call: %+v", s)
	}
	if vals2[0].O != first {
		t.Fatal("root object not reused in place")
	}
	if !model.DeepEqual(head2, vals2[0].O) {
		t.Fatal("reused graph carries wrong data")
	}
}

func TestReuseLengthMismatchReallocates(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(true)
	cfg := Config{Mode: ModeSite, CycleElim: true, Reuse: true}
	_, roots, _ := roundTrip(t, w, []model.Value{model.Ref(w.makeList(5))}, []*Plan{plan}, cfg, nil)

	// A longer list: the shared prefix is reused, the tail allocated.
	vals, _, c := roundTrip(t, w, []model.Value{model.Ref(w.makeList(8))}, []*Plan{plan}, cfg, roots)
	s := c.Snapshot()
	if s.ReusedObjs != 5 || s.AllocObjects != 3 {
		t.Fatalf("partial reuse: reused=%d alloc=%d", s.ReusedObjs, s.AllocObjects)
	}
	if n, _ := model.GraphSize(vals[0].O); n != 8 {
		t.Fatalf("result length %d", n)
	}
}

func TestReuseArrayResizePath(t *testing.T) {
	// Figure 13's "if an array size is mismatched ... a new array of
	// the correct size is allocated".
	w := newWorld()
	da := w.reg.DoubleArray()
	plan := &Plan{Site: "s", Kind: model.FRef, Root: &NodePlan{Class: da}, Reusable: true}
	cfg := Config{Mode: ModeSite, CycleElim: true, Reuse: true}

	a := model.NewArray(da, 16)
	for i := range a.Doubles {
		a.Doubles[i] = float64(i)
	}
	vals, roots, _ := roundTrip(t, w, []model.Value{model.Ref(a)}, []*Plan{plan}, cfg, nil)
	firstData := &vals[0].O.Doubles[0]

	// Same size: reused, same backing store.
	vals2, roots2, c := roundTrip(t, w, []model.Value{model.Ref(a)}, []*Plan{plan}, cfg, roots)
	if c.Snapshot().ReusedObjs != 1 || &vals2[0].O.Doubles[0] != firstData {
		t.Fatal("same-size array not reused")
	}

	// Different size: fresh allocation.
	b := model.NewArray(da, 32)
	vals3, _, c3 := roundTrip(t, w, []model.Value{model.Ref(b)}, []*Plan{plan}, cfg, roots2)
	if c3.Snapshot().ReusedObjs != 0 || c3.Snapshot().AllocObjects != 1 {
		t.Fatalf("mismatched array reuse stats: %+v", c3.Snapshot())
	}
	if len(vals3[0].O.Doubles) != 32 {
		t.Fatal("wrong resized length")
	}
}

func TestPolymorphicFallback(t *testing.T) {
	// Plan predicts Derived1 but a Derived2 arrives: the writer must
	// fall back to the dynamic path and the reader must still decode.
	w := newWorld()
	d1NP := &NodePlan{Class: w.derived1, Steps: []Step{{Op: OpInt, Field: 0, FieldName: "data"}}}
	plan := &Plan{Site: "s", Kind: model.FRef, Root: d1NP, NeedCycle: false}

	d2 := model.New(w.derived2)
	inner := model.New(w.derived1)
	inner.Set("data", model.Int(3))
	d2.Set("p", model.Ref(inner))

	got, _, c := roundTrip(t, w, []model.Value{model.Ref(d2)}, []*Plan{plan}, Config{Mode: ModeSite, CycleElim: true}, nil)
	if got[0].O.Class != w.derived2 || got[0].O.GetRef("p").Get("data").I != 3 {
		t.Fatalf("fallback decode wrong: %v", got[0].O)
	}
	if c.Snapshot().SerializerCalls == 0 {
		t.Fatal("fallback should count dynamic serializer calls")
	}
}

func TestNullAndEmpty(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	got, _, _ := roundTrip(t, w, []model.Value{model.Null()}, []*Plan{plan}, Config{Mode: ModeSite}, nil)
	if !got[0].IsNull() {
		t.Fatal("null lost")
	}
	got, _, _ = roundTrip(t, w, []model.Value{model.Null()}, nil, Config{Mode: ModeClass}, nil)
	if !got[0].IsNull() {
		t.Fatal("null lost in class mode")
	}
	// Zero values: a message with no values at all.
	got, _, _ = roundTrip(t, w, nil, nil, Config{Mode: ModeClass}, nil)
	if len(got) != 0 {
		t.Fatal("empty message")
	}
}

func TestErrorsSurface(t *testing.T) {
	w := newWorld()
	var c stats.Counters

	// Truncated message.
	m := wire.NewMessage(0)
	if _, err := WriteValues(m, []model.Value{model.Ref(w.makeList(3))}, nil, Config{Mode: ModeClass}, &c); err != nil {
		t.Fatal(err)
	}
	trunc := m.Bytes()[:m.Len()-4]
	if _, _, _, err := ReadValues(wire.FromBytes(trunc), w.reg, 1, nil, Config{Mode: ModeClass}, nil, &c); err == nil {
		t.Fatal("truncated message accepted")
	}

	// Unknown class ID.
	other := model.NewRegistry()
	if _, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), other, 1, nil, Config{Mode: ModeClass}, nil, &c); err == nil {
		t.Fatal("unknown class accepted")
	}

	// Site mode plan count mismatch.
	if _, err := WriteValues(wire.NewMessage(0), []model.Value{model.Int(1)}, nil, Config{Mode: ModeSite}, &c); err == nil {
		t.Fatal("plan count mismatch accepted on write")
	}
	if _, _, _, err := ReadValues(wire.FromBytes(nil), w.reg, 2, []*Plan{PrimitivePlan("s", model.FInt)}, Config{Mode: ModeSite}, nil, &c); err == nil {
		t.Fatal("plan count mismatch accepted on read")
	}

	// Planned object on the wire but no plan on the reader.
	mm := wire.NewMessage(0)
	plan := w.nodeListPlan(false)
	if _, err := WriteValues(mm, []model.Value{model.Ref(w.makeList(1))}, []*Plan{plan}, Config{Mode: ModeSite}, &c); err != nil {
		t.Fatal(err)
	}
	badPlan := &Plan{Site: "s", Kind: model.FRef, Root: nil, NeedCycle: true}
	if _, _, _, err := ReadValues(wire.FromBytes(mm.Bytes()), w.reg, 1, []*Plan{badPlan}, Config{Mode: ModeSite}, nil, &c); err == nil {
		t.Fatal("planned wire object without reader plan accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	w := newWorld()
	good := w.nodeListPlan(false)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Plan{Site: "s", Kind: model.FRef, Root: &NodePlan{Class: w.node, Steps: []Step{{Op: OpInt, Field: 9}}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range step accepted")
	}
	bad2 := &Plan{Site: "s", Kind: model.FRef, Root: &NodePlan{Class: w.node, Steps: []Step{{Op: OpDouble, Field: 0}}}}
	if bad2.Validate() == nil {
		t.Fatal("kind-mismatched step accepted")
	}
	bad3 := &Plan{Site: "s", Kind: model.FRef, Root: &NodePlan{Class: w.node, Steps: []Step{{Op: OpRef, Field: 1}}}}
	if bad3.Validate() == nil {
		t.Fatal("OpRef without target accepted")
	}
	prim := &Plan{Site: "s", Kind: model.FInt, Root: &NodePlan{Class: w.node}}
	if prim.Validate() == nil {
		t.Fatal("primitive plan with root accepted")
	}
}

func TestPseudocodeRendering(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	code := plan.Pseudocode()
	for _, want := range []string{"marshaler_Foo.send.1", "CycleTable", "append_int", "recursive structure"} {
		if !strings.Contains(code, want) {
			t.Fatalf("pseudocode missing %q:\n%s", want, code)
		}
	}
	// Array plan: bulk copy phrasing of Figure 13.
	ap := &Plan{Site: "ArrayBench.send.1", Kind: model.FRef,
		Root: &NodePlan{Class: w.reg.ArrayOf(w.reg.DoubleArray()),
			Elem: &NodePlan{Class: w.reg.DoubleArray()}}}
	code = ap.Pseudocode()
	if !strings.Contains(code, "append_double_array") || strings.Contains(code, "CycleTable") {
		t.Fatalf("array pseudocode wrong:\n%s", code)
	}
}

func TestRandomListsRoundTripProperty(t *testing.T) {
	w := newWorld()
	plan := w.nodeListPlan(false)
	f := func(vals []int16, ring bool) bool {
		var head *model.Object
		for _, v := range vals {
			x := model.New(w.node)
			x.Set("v", model.Int(int64(v)))
			x.Set("next", model.Ref(head))
			head = x
		}
		if ring && head != nil {
			tail := head
			for tail.GetRef("next") != nil {
				tail = tail.GetRef("next")
			}
			tail.Set("next", model.Ref(head))
		}
		for _, cfg := range []Config{{Mode: ModeClass}, {Mode: ModeSite}, {Mode: ModeSite, CycleElim: true}} {
			var plans []*Plan
			if cfg.Mode == ModeSite {
				plans = []*Plan{plan}
			}
			var c stats.Counters
			m := wire.NewMessage(0)
			if _, err := WriteValues(m, []model.Value{model.Ref(head)}, plans, cfg, &c); err != nil {
				return false
			}
			got, _, _, err := ReadValues(wire.FromBytes(m.Bytes()), w.reg, 1, plans, cfg, nil, &c)
			if err != nil {
				return false
			}
			if !model.DeepEqual(head, got[0].O) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseCacheGuard(t *testing.T) {
	var rc ReuseCache
	if s, v := rc.Take(); s != nil || v != nil {
		t.Fatal("fresh cache not empty")
	}
	w := newWorld()
	roots := []*model.Object{model.New(w.leaf)}
	vals := make([]model.Value, 1)
	rc.Put(roots, vals)
	got, gotVals := rc.Take()
	if len(got) != 1 || got[0] != roots[0] || len(gotVals) != 1 {
		t.Fatal("Put/Take round trip")
	}
	// Figure 13 guard: a second concurrent Take sees nil.
	if s, v := rc.Take(); s != nil || v != nil {
		t.Fatal("double Take should see nil")
	}
	// A nil argument must not clobber a slot another holder returned.
	rc.Put(roots, nil)
	rc.Put(nil, vals)
	got, gotVals = rc.Take()
	if len(got) != 1 || len(gotVals) != 1 {
		t.Fatal("nil Put argument clobbered the other slot")
	}
}
