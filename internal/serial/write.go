package serial

import (
	"fmt"

	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// Config selects which of the paper's optimizations are active for a
// message. The five evaluated configurations are:
//
//	class:             {Mode: ModeClass}
//	site:              {Mode: ModeSite}
//	site+cycle:        {Mode: ModeSite, CycleElim: true}
//	site+reuse:        {Mode: ModeSite, Reuse: true}
//	site+reuse+cycle:  {Mode: ModeSite, CycleElim: true, Reuse: true}
type Config struct {
	Mode      Mode
	CycleElim bool // honor Plan.NeedCycle instead of always creating tables
	Reuse     bool // honor Plan.Reusable (caller supplies the cache)
	// Link carries the per-link plan table negotiated from the HELLO
	// fingerprint exchange: classes whose compiled plans disagree with
	// the peer's are written through the self-describing class-level
	// encoding instead of the planned fast path. nil — the homogeneous
	// cluster default — costs writers a single nil check per reference.
	Link *LinkPlans
}

// needTable decides whether this message requires a cycle table.
func needTable(vals []model.Value, plans []*Plan, cfg Config) bool {
	for i, v := range vals {
		if v.Kind != model.FRef || v.O == nil {
			continue
		}
		if cfg.Mode == ModeClass {
			return true
		}
		var p *Plan
		if i < len(plans) {
			p = plans[i]
		}
		if p == nil || !cfg.CycleElim || p.NeedCycle {
			return true
		}
	}
	return false
}

// WriteValues serializes vals into m under cfg. In site mode, plans
// must contain one entry per value (produced by the compiler for this
// call site). The returned OpCount feeds the virtual-time cost model.
func WriteValues(m *wire.Message, vals []model.Value, plans []*Plan, cfg Config, c *stats.Counters) (simtime.OpCount, error) {
	if cfg.Mode == ModeSite && len(plans) != len(vals) {
		return simtime.OpCount{}, fmt.Errorf("serial: site mode with %d plans for %d values", len(plans), len(vals))
	}
	w := getWriteCtx(m, c)
	w.link = cfg.Link
	err := writeBody(w, vals, plans, cfg)
	ops := w.ops
	putWriteCtx(w)
	return ops, err
}

func writeBody(w *writeCtx, vals []model.Value, plans []*Plan, cfg Config) error {
	if cfg.Mode == ModeClass && len(vals) > 0 {
		// Generic marshaler entry: protocol dispatch the call-site
		// specific stubs compile away (§3.1).
		w.ops.StubOps++
	}
	if needTable(vals, plans, cfg) {
		w.table = w.wt.reset(w.c, &w.ops)
	}
	for i, v := range vals {
		if cfg.Mode == ModeClass {
			// Self-describing: kind byte per value plus per-object
			// class IDs below.
			w.m.AppendByte(byte(v.Kind))
			w.c.TypeBytes.Add(1)
			if v.Kind == model.FString {
				w.dynString()
			}
			writeValue(w, v, nil)
		} else {
			p := plans[i]
			if p.Kind != v.Kind {
				return fmt.Errorf("serial: plan %s expects %v, got %v", p.Site, p.Kind, v.Kind)
			}
			writeValue(w, v, p.Root)
		}
	}
	return nil
}

// writeValue writes one value; np is the call-site object plan for
// reference values (nil selects the dynamic path).
func writeValue(w *writeCtx, v model.Value, np *NodePlan) {
	switch v.Kind {
	case model.FInt:
		w.m.AppendInt64(v.I)
		w.ops.InlinedWrites++
	case model.FDouble:
		w.m.AppendFloat64(v.D)
		w.ops.InlinedWrites++
	case model.FBool:
		w.m.AppendBool(v.AsBool())
		w.ops.InlinedWrites++
	case model.FString:
		w.m.AppendString(v.S)
		w.ops.InlinedWrites++
	case model.FRef:
		writeRef(w, v.O, np)
	}
}

// writeRef writes an object reference: null marker, cycle handle,
// plan-driven body (refNew, no type info) or dynamic body
// (refNewDynamic, explicit class ID).
func writeRef(w *writeCtx, o *model.Object, np *NodePlan) {
	if o == nil {
		w.m.AppendByte(refNull)
		return
	}
	if w.table != nil {
		if h, found := w.table.lookupOrAdd(o, w.c, &w.ops); found {
			w.m.AppendByte(refHandle)
			w.m.AppendInt32(h)
			return
		}
	}
	if np != nil && o.Class == np.Class {
		if w.link == nil || !w.link.Demoted(o.Class) {
			w.m.AppendByte(refNew)
			w.c.InlinedWrites.Add(1)
			writePlannedBody(w, o, np)
			return
		}
		// Negotiated fallback: the peer compiled a different plan for
		// this class (fingerprint mismatch at HELLO), so the planned
		// form would mis-decode there. Demote this object to the
		// self-describing encoding below — the reader's marker dispatch
		// handles refNewDynamic under any plan.
		w.link.fallbacks.Add(1)
		w.c.PlanFallbacks.Add(1)
	}
	// Dynamic path: class mode, polymorphic fallback, negotiated
	// demotion, or a plan miss (the object's runtime class differs from
	// the static prediction).
	w.m.AppendByte(refNewDynamic)
	w.m.AppendInt32(o.Class.ID)
	w.c.TypeBytes.Add(4)
	w.c.TypeOps.Add(1)
	w.ops.TypeOps++
	w.c.SerializerCalls.Add(1)
	w.ops.SerializerCalls++
	writeDynamicBody(w, o)
}

// dynString accounts for serializing a string through the dynamic
// path: in Java a String is two heap objects (the String and its
// char[]), each with a dynamic serializer invocation and type
// information — overhead the call-site plans remove by knowing the
// field is a String statically.
func (w *writeCtx) dynString() {
	w.c.SerializerCalls.Add(2)
	w.ops.SerializerCalls += 2
	w.c.TypeOps.Add(2)
	w.c.TypeBytes.Add(8)
	w.ops.TypeOps += 2
}

// dynArrayIntrospect accounts for the class-mode examination of an
// array: "the arrays have to be inspected ... each sub array examined
// to compute the size of the array's payload" (§4).
func (w *writeCtx) dynArrayIntrospect(n int) {
	steps := int64(n/4) + 1
	w.c.IntrospectOps.Add(steps)
	w.ops.IntrospectOps += steps
}

// writeDynamicBody emits an object through the per-class generated
// serializer: an introspection step per field, a dynamic serializer
// invocation per referred-to object, type information per object.
func writeDynamicBody(w *writeCtx, o *model.Object) {
	switch o.Class.Kind {
	case model.KObject:
		for i, f := range o.Class.AllFields() {
			w.c.IntrospectOps.Add(1)
			w.ops.IntrospectOps++
			v := o.Fields[i]
			switch f.Kind {
			case model.FInt:
				w.m.AppendInt64(v.I)
			case model.FDouble:
				w.m.AppendFloat64(v.D)
			case model.FBool:
				w.m.AppendBool(v.AsBool())
			case model.FString:
				w.dynString()
				w.m.AppendString(v.S)
			case model.FRef:
				writeRef(w, v.O, nil)
			}
		}
	case model.KDoubleArray:
		w.dynArrayIntrospect(len(o.Doubles))
		w.m.AppendFloat64Slice(o.Doubles)
		w.ops.Elems += int64(len(o.Doubles))
	case model.KIntArray:
		w.dynArrayIntrospect(len(o.Ints))
		w.m.AppendInt64Slice(o.Ints)
		w.ops.Elems += int64(len(o.Ints))
	case model.KByteArray:
		w.dynArrayIntrospect(len(o.Bytes))
		w.m.AppendBytes(o.Bytes)
		w.ops.Elems += int64(len(o.Bytes))
	case model.KRefArray:
		w.dynArrayIntrospect(len(o.Refs))
		w.m.AppendInt32(int32(len(o.Refs)))
		for _, e := range o.Refs {
			writeRef(w, e, nil)
		}
	}
}

// writePlannedBody emits an object through the call-site-specific
// inlined code path: field writes are direct, statically known
// referents carry no type information.
func writePlannedBody(w *writeCtx, o *model.Object, np *NodePlan) {
	switch np.Class.Kind {
	case model.KObject:
		for _, s := range np.Steps {
			v := o.Fields[s.Field]
			switch s.Op {
			case OpInt:
				w.m.AppendInt64(v.I)
			case OpDouble:
				w.m.AppendFloat64(v.D)
			case OpBool:
				w.m.AppendBool(v.AsBool())
			case OpString:
				w.m.AppendString(v.S)
			case OpRef:
				writeRef(w, v.O, s.Target)
				continue
			case OpRefDynamic:
				writeRef(w, v.O, nil)
				continue
			}
			w.c.InlinedWrites.Add(1)
			w.ops.InlinedWrites++
		}
	case model.KDoubleArray:
		w.m.AppendFloat64Slice(o.Doubles)
		w.ops.Elems += int64(len(o.Doubles))
		w.ops.InlinedWrites++
	case model.KIntArray:
		w.m.AppendInt64Slice(o.Ints)
		w.ops.Elems += int64(len(o.Ints))
		w.ops.InlinedWrites++
	case model.KByteArray:
		w.m.AppendBytes(o.Bytes)
		w.ops.Elems += int64(len(o.Bytes))
		w.ops.InlinedWrites++
	case model.KRefArray:
		w.m.AppendInt32(int32(len(o.Refs)))
		w.ops.InlinedWrites++
		for _, e := range o.Refs {
			writeRef(w, e, np.Elem)
		}
	}
}
