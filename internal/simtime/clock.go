package simtime

import "sync"

// Clock is a virtual per-node clock. Message causality is enforced by
// Sync: a receiver's clock never runs behind the (send time + wire
// delay) of a message it processes, which is exactly Lamport's rule and
// makes the maximum clock over all nodes a valid parallel makespan.
type Clock struct {
	mu sync.Mutex
	ns int64
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ns
}

// Advance adds d nanoseconds of local work and returns the new time.
func (c *Clock) Advance(d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ns += d
	return c.ns
}

// Sync raises the clock to at least ts (message arrival) and returns
// the new time.
func (c *Clock) Sync(ts int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.ns {
		c.ns = ts
	}
	return c.ns
}

// SyncAdvance applies Sync(ts) followed by Advance(d) atomically.
func (c *Clock) SyncAdvance(ts, d int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.ns {
		c.ns = ts
	}
	c.ns += d
	return c.ns
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ns = 0
}

// Seconds converts nanoseconds to floating-point seconds.
func Seconds(ns int64) float64 { return float64(ns) / 1e9 }
