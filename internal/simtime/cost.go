// Package simtime provides the virtual-time machinery that substitutes
// for the paper's 1 GHz Pentium III + Myrinet/GM testbed. Each cluster
// node carries a Lamport-style virtual clock; serialization,
// allocation, cycle-table and network work advance the clocks through a
// calibrated cost model, so the five optimization configurations
// produce deterministic "seconds" whose *ratios* can be compared with
// the paper's tables (the absolute 2003 numbers are unreachable on
// modern hardware either way).
package simtime

// CostModel holds per-operation virtual costs in nanoseconds.
//
// Calibration notes (DefaultCostModel):
//   - The paper states a single optimized RMI costs ~40 µs on Myrinet
//     and object allocation+collection ~0.1 µs (§3.3). One-way network
//     latency + protocol handling is therefore modeled at ~17 µs per
//     message plus dispatch, giving ~40 µs round trip for a small call.
//   - Myrinet payload bandwidth is modeled at ~125 MB/s → 8 ns/byte.
//   - Per-object type information costs cover writing the descriptor,
//     parsing it, and hashing the type descriptor to a vtable pointer
//     on the receiver (§4), dominating the "class" column's overhead.
//   - Cycle-table costs cover table creation/deletion per RMI and a
//     hash lookup+insert per reference, matching §1's cost inventory.
//   - Dynamic serializer invocation covers the indirect method-table
//     call that call-site inlining removes (§3.1).
type CostModel struct {
	// Network.
	NetLatencyNS int64 // one-way message latency (wire + GM handling)
	NetPerByteNS int64 // per payload byte
	DispatchNS   int64 // receiver upcall / thread hand-off per message

	// Serialization.
	StubNS           int64 // generic marshaler/stub entry per class-mode message
	SerializerCallNS int64 // dynamic per-class serializer invocation
	TypeInfoNS       int64 // write+parse+hash per-object type descriptor
	IntrospectNS     int64 // class-mode layout walk, per field / per few elements
	FieldWriteNS     int64 // inlined field copy, per field
	ElemNS           int64 // per array element copied

	// Cycle detection.
	CycleTableNS  int64 // hash-table create+delete, per message side
	CycleLookupNS int64 // per lookup/insert

	// Allocation.
	AllocNS int64 // object allocation + eventual collection
}

// DefaultCostModel returns the calibrated model described above.
func DefaultCostModel() CostModel {
	return CostModel{
		NetLatencyNS:     17000,
		NetPerByteNS:     8,
		DispatchNS:       3000,
		StubNS:           800,
		SerializerCallNS: 60,
		TypeInfoNS:       60,
		IntrospectNS:     60,
		FieldWriteNS:     15,
		ElemNS:           2,
		CycleTableNS:     3000,
		CycleLookupNS:    450,
		AllocNS:          600,
	}
}

// OpCount tallies the work one marshal or unmarshal step performed;
// the cost model converts it to virtual nanoseconds.
type OpCount struct {
	StubOps         int64
	SerializerCalls int64
	TypeOps         int64
	IntrospectOps   int64
	InlinedWrites   int64
	Elems           int64
	CycleTables     int64
	CycleLookups    int64
	Allocs          int64
}

// Add accumulates o2 into o.
func (o *OpCount) Add(o2 OpCount) {
	o.StubOps += o2.StubOps
	o.SerializerCalls += o2.SerializerCalls
	o.TypeOps += o2.TypeOps
	o.IntrospectOps += o2.IntrospectOps
	o.InlinedWrites += o2.InlinedWrites
	o.Elems += o2.Elems
	o.CycleTables += o2.CycleTables
	o.CycleLookups += o2.CycleLookups
	o.Allocs += o2.Allocs
}

// CostNS converts an operation tally into virtual nanoseconds.
func (m CostModel) CostNS(o OpCount) int64 {
	return o.StubOps*m.StubNS +
		o.SerializerCalls*m.SerializerCallNS +
		o.TypeOps*m.TypeInfoNS +
		o.IntrospectOps*m.IntrospectNS +
		o.InlinedWrites*m.FieldWriteNS +
		o.Elems*m.ElemNS +
		o.CycleTables*m.CycleTableNS +
		o.CycleLookups*m.CycleLookupNS +
		o.Allocs*m.AllocNS
}

// MessageNS returns the virtual wire time for a payload of n bytes.
func (m CostModel) MessageNS(n int) int64 {
	return m.NetLatencyNS + int64(n)*m.NetPerByteNS
}
