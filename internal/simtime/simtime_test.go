package simtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestClockAdvanceAndSync(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock not zero")
	}
	c.Advance(100)
	c.Sync(50) // must not move backwards
	if c.Now() != 100 {
		t.Fatalf("Sync moved clock backwards: %d", c.Now())
	}
	c.Sync(250)
	if c.Now() != 250 {
		t.Fatalf("Sync failed: %d", c.Now())
	}
	if got := c.SyncAdvance(200, 10); got != 260 {
		t.Fatalf("SyncAdvance = %d", got)
	}
	if got := c.SyncAdvance(1000, 5); got != 1005 {
		t.Fatalf("SyncAdvance = %d", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	var c Clock
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8000 {
		t.Fatalf("lost advances: %d", c.Now())
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	// More work must never be cheaper.
	f := func(a, b uint16) bool {
		o1 := OpCount{SerializerCalls: int64(a), CycleLookups: int64(b)}
		o2 := o1
		o2.Allocs = 10
		return m.CostNS(o2) >= m.CostNS(o1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelComposition(t *testing.T) {
	m := DefaultCostModel()
	a := OpCount{SerializerCalls: 3, TypeOps: 2, InlinedWrites: 7, Elems: 100}
	b := OpCount{CycleTables: 1, CycleLookups: 10, Allocs: 5, IntrospectOps: 4}
	sum := a
	sum.Add(b)
	if m.CostNS(sum) != m.CostNS(a)+m.CostNS(b) {
		t.Fatal("cost is not additive")
	}
}

func TestMessageNS(t *testing.T) {
	m := DefaultCostModel()
	if m.MessageNS(0) != m.NetLatencyNS {
		t.Fatal("zero-byte message should cost pure latency")
	}
	if m.MessageNS(1000) != m.NetLatencyNS+1000*m.NetPerByteNS {
		t.Fatal("per-byte cost wrong")
	}
}

func TestDefaultCalibrationRoundTrip(t *testing.T) {
	// The paper says a single optimized RMI costs about 40 µs: two
	// messages (call + ack) with dispatch overhead should land in the
	// 30-60 µs window for a tiny payload.
	m := DefaultCostModel()
	rt := 2*m.MessageNS(32) + 2*m.DispatchNS
	if rt < 30000 || rt > 60000 {
		t.Fatalf("calibrated small-RMI round trip = %d ns, want ~40 µs", rt)
	}
	// Allocation is ~0.1 µs per the paper plus amortized GC and cache
	// effects (calibrated against the reuse gains of Tables 1-3).
	if m.AllocNS != 600 {
		t.Fatalf("AllocNS = %d, want 600", m.AllocNS)
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(2_500_000_000) != 2.5 {
		t.Fatal("Seconds conversion")
	}
}
