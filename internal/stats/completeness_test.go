package stats

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// These tests pin the maintenance contract of the Counters/Snapshot
// pair: every counter added to Counters must also be copied by
// Snapshot, zeroed by Reset, subtracted by Sub, and rendered by
// String. The checks walk the structs with reflection, so adding a
// field to one side without the others fails here instead of silently
// dropping data from reports.

// loadCounter reads one Counters field (PaddedInt64 or atomic.Int64)
// via its Load method.
func loadCounter(f reflect.Value) int64 {
	return f.Addr().MethodByName("Load").Call(nil)[0].Int()
}

// storeCounter writes one Counters field via its Store method.
func storeCounter(f reflect.Value, v int64) {
	f.Addr().MethodByName("Store").Call([]reflect.Value{reflect.ValueOf(v)})
}

func TestSnapshotCoversEveryCounterField(t *testing.T) {
	var c Counters
	ct := reflect.TypeOf(&c).Elem()
	st := reflect.TypeOf(Snapshot{})

	// Every Counters field must have a same-named int64 field in
	// Snapshot (and vice versa), so neither side can drift.
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		sf, ok := st.FieldByName(name)
		if !ok {
			t.Errorf("Counters.%s has no Snapshot field", name)
			continue
		}
		if sf.Type.Kind() != reflect.Int64 {
			t.Errorf("Snapshot.%s is %s, want int64", name, sf.Type)
		}
	}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if _, ok := ct.FieldByName(name); !ok {
			t.Errorf("Snapshot.%s has no Counters field", name)
		}
	}

	// Store a distinct value into each counter and check Snapshot
	// copies every one of them — a Snapshot() body that forgets a field
	// would pass the shape check above but fail here.
	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < ct.NumField(); i++ {
		storeCounter(cv.Field(i), int64(1000+i))
	}
	sv := reflect.ValueOf(c.Snapshot())
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		got := sv.FieldByName(name).Int()
		if got != int64(1000+i) {
			t.Errorf("Snapshot().%s = %d, want %d (field not copied)", name, got, 1000+i)
		}
	}
}

func TestResetZeroesEveryCounterField(t *testing.T) {
	var c Counters
	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < cv.NumField(); i++ {
		storeCounter(cv.Field(i), int64(7+i))
	}
	c.Reset()
	for i := 0; i < cv.NumField(); i++ {
		if got := loadCounter(cv.Field(i)); got != 0 {
			t.Errorf("Reset left %s = %d", cv.Type().Field(i).Name, got)
		}
	}
}

func TestSubCoversEverySnapshotField(t *testing.T) {
	// a - b must subtract field-wise for EVERY field: build two
	// snapshots with distinct per-field values and check the deltas.
	var a, b Snapshot
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(100 + 10*i))
		bv.Field(i).SetInt(int64(i))
	}
	dv := reflect.ValueOf(a.Sub(b))
	for i := 0; i < dv.NumField(); i++ {
		want := int64(100 + 10*i - i)
		if got := dv.Field(i).Int(); got != want {
			t.Errorf("Sub().%s = %d, want %d (field not subtracted)",
				dv.Type().Field(i).Name, got, want)
		}
	}
}

func TestStringRendersFaultCounters(t *testing.T) {
	var c Counters
	c.Retries.Store(4)
	c.Timeouts.Store(1)
	c.DupSuppressed.Store(3)
	c.CorruptDropped.Store(2)
	c.StaleReplies.Store(5)
	out := c.Snapshot().String()
	for _, frag := range []string{
		"retries=4", "timeouts=1", "dupSuppressed=3",
		"corruptDropped=2", "staleReplies=5",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q: %s", frag, out)
		}
	}
}

func TestStringMentionsEveryCounterValue(t *testing.T) {
	// Weaker than a format check, strong enough to catch a dropped
	// field: give every counter a unique sentinel value and require each
	// sentinel to appear somewhere in the rendering. AllocBytes renders
	// as megabytes, so it is asserted via its MB form instead.
	var c Counters
	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < cv.NumField(); i++ {
		storeCounter(cv.Field(i), int64(900001+i*7))
	}
	c.AllocBytes.Store(3 << 20)
	out := c.Snapshot().String()
	for i := 0; i < cv.NumField(); i++ {
		name := cv.Type().Field(i).Name
		if name == "AllocBytes" {
			if !strings.Contains(out, "3.00 MB") {
				t.Errorf("String() missing AllocBytes as %q: %s", "3.00 MB", out)
			}
			continue
		}
		if name == "TypeOps" || name == "IntrospectOps" ||
			name == "ReusedBytes" || name == "AcksOnly" {
			// Not part of the paper-style summary line; tracked but
			// reported through other tables.
			continue
		}
		sentinel := fmt.Sprintf("%d", 900001+i*7)
		if !strings.Contains(out, sentinel) {
			t.Errorf("String() missing %s (sentinel %s): %s", name, sentinel, out)
		}
	}
}
