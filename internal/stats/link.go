package stats

// LinkStat describes the negotiated state of one directed link in a
// cluster: which protocol version it runs at, how many classes the
// HELLO fingerprint exchange demoted to the class-level encoding, and
// how many objects have actually taken the demoted path. Surfaced by
// rmi.Cluster.LinkStats, the /metrics and /links endpoints, and the
// rmibench negotiation report.
type LinkStat struct {
	From           int    `json:"from"`
	To             int    `json:"to"`
	Version        int32  `json:"version"`         // negotiated wire protocol version
	PeerPlans      int32  `json:"peer_plans"`      // peer's advertised plan generation
	DemotedClasses int    `json:"demoted_classes"` // classes negotiated down to class-level encoding
	Fallbacks      int64  `json:"fallbacks"`       // objects written through the demoted path
	Caps           uint32 `json:"caps"`            // negotiated capability bits (wire.Cap*)
	BatchedFrames  int64  `json:"batched_frames"`  // logical frames coalesced into batch containers
	BatchFlushes   int64  `json:"batch_flushes"`   // batch containers this link put on the wire
}
