package stats

import "fmt"

// OverloadStats is a point-in-time snapshot of the runtime's backlog
// signals — the queues that grow when a node takes on more work than
// it retires. These are the admission-control inputs ROADMAP item 1
// consumes; the obs server exposes each field as a Prometheus gauge
// (cormi_pending_calls, cormi_promise_table, cormi_promise_parked,
// cormi_batch_queue_depth). Unlike Counters these are levels, not
// monotone totals: they fall back to zero when the backlog drains.
type OverloadStats struct {
	// PendingCalls is the number of issued remote invocations still
	// awaiting their reply (the pending-table size, summed over nodes).
	PendingCalls int64 `json:"pending_calls"`
	// PromiseTable is the callee-side promise-table occupancy: promised
	// results retained for pipelined consumers, summed over nodes.
	PromiseTable int64 `json:"promise_table"`
	// PromiseParked is the number of executor goroutines currently
	// parked waiting for a promised argument's producer.
	PromiseParked int64 `json:"promise_parked"`
	// BatchQueueDepth is the number of coalesced frames sitting in
	// not-yet-flushed batch containers, summed over links.
	BatchQueueDepth int64 `json:"batch_queue_depth"`
}

// Add returns the field-wise sum of two snapshots (aggregating several
// clusters behind one obs server).
func (o OverloadStats) Add(p OverloadStats) OverloadStats {
	o.PendingCalls += p.PendingCalls
	o.PromiseTable += p.PromiseTable
	o.PromiseParked += p.PromiseParked
	o.BatchQueueDepth += p.BatchQueueDepth
	return o
}

func (o OverloadStats) String() string {
	return fmt.Sprintf("overload: pending=%d promises(table=%d parked=%d) batchq=%d",
		o.PendingCalls, o.PromiseTable, o.PromiseParked, o.BatchQueueDepth)
}
