package stats

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Same maintenance contract as the Counters/Snapshot pair: every field
// added to OverloadStats must be summed by Add, rendered by String,
// and carry a snake_case JSON tag — the reflective sweeps below fail
// on a field added to the struct but not to one of those surfaces.

func TestOverloadAddCoversEveryField(t *testing.T) {
	var a, b OverloadStats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("OverloadStats.%s is %s; gauges are int64 levels",
				av.Type().Field(i).Name, av.Field(i).Type())
		}
		av.Field(i).SetInt(int64(100 + 10*i))
		bv.Field(i).SetInt(int64(1 + i))
	}
	sv := reflect.ValueOf(a.Add(b))
	for i := 0; i < sv.NumField(); i++ {
		want := int64(100 + 10*i + 1 + i)
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("Add().%s = %d, want %d (field not summed)",
				sv.Type().Field(i).Name, got, want)
		}
	}
}

func TestOverloadStringMentionsEveryField(t *testing.T) {
	var o OverloadStats
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < ov.NumField(); i++ {
		ov.Field(i).SetInt(int64(700001 + i*7))
	}
	out := o.String()
	for i := 0; i < ov.NumField(); i++ {
		sentinel := fmt.Sprintf("%d", 700001+i*7)
		if !strings.Contains(out, sentinel) {
			t.Errorf("String() missing %s (sentinel %s): %s",
				ov.Type().Field(i).Name, sentinel, out)
		}
	}
}

func TestOverloadJSONTagsAreSnakeCase(t *testing.T) {
	ot := reflect.TypeOf(OverloadStats{})
	for i := 0; i < ot.NumField(); i++ {
		tag := ot.Field(i).Tag.Get("json")
		if tag == "" || tag == "-" {
			t.Errorf("OverloadStats.%s has no json tag", ot.Field(i).Name)
			continue
		}
		if strings.ToLower(tag) != tag || strings.Contains(tag, " ") {
			t.Errorf("OverloadStats.%s json tag %q is not snake_case", ot.Field(i).Name, tag)
		}
	}
	// Round trip: every field survives marshal/unmarshal.
	var o OverloadStats
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < ov.NumField(); i++ {
		ov.Field(i).SetInt(int64(11 + i))
	}
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var back OverloadStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Errorf("JSON round trip lost data: %+v != %+v", back, o)
	}
}
