package stats

import (
	"fmt"
	"sync/atomic"
)

// SiteCounters accumulates runtime events for ONE call site, keyed by
// the compiler's Plan.Site id. All fields are atomic: the hot path
// only ever does a handful of uncontended atomic adds, so keeping
// these always-on costs no allocations and stays inside the perf
// budget. A SiteCounters value must not be copied after first use.
type SiteCounters struct {
	Calls              atomic.Int64 // invocations through this site (local + remote)
	LocalCalls         atomic.Int64 // invocations served node-locally
	WireBytes          atomic.Int64 // payload bytes this site put on the wire (calls + replies)
	ReuseHits          atomic.Int64 // reuse-cache Take() that returned a donor graph
	ReuseMisses        atomic.Int64 // reuse-cache Take() that found the cache empty
	CycleTablesAvoided atomic.Int64 // messages sent without a cycle table thanks to §3.2
	ClaimChecks        atomic.Int64 // sampled claim re-verifications at this site
	ClaimViolations    atomic.Int64 // compile-time claims found violated at this site
}

// SiteStat is an immutable snapshot of one site's counters, in the
// JSON shape served by the obs /callsites endpoint.
type SiteStat struct {
	Site               string `json:"site"`
	Calls              int64  `json:"calls"`
	LocalCalls         int64  `json:"local_calls"`
	WireBytes          int64  `json:"wire_bytes"`
	ReuseHits          int64  `json:"reuse_hits"`
	ReuseMisses        int64  `json:"reuse_misses"`
	CycleTablesAvoided int64  `json:"cycle_tables_avoided"`
	ClaimChecks        int64  `json:"claim_checks"`
	ClaimViolations    int64  `json:"claim_violations"`
}

// Snapshot copies the current values under the given site name.
func (c *SiteCounters) Snapshot(site string) SiteStat {
	return SiteStat{
		Site:               site,
		Calls:              c.Calls.Load(),
		LocalCalls:         c.LocalCalls.Load(),
		WireBytes:          c.WireBytes.Load(),
		ReuseHits:          c.ReuseHits.Load(),
		ReuseMisses:        c.ReuseMisses.Load(),
		CycleTablesAvoided: c.CycleTablesAvoided.Load(),
		ClaimChecks:        c.ClaimChecks.Load(),
		ClaimViolations:    c.ClaimViolations.Load(),
	}
}

// Add returns the field-wise sum of two snapshots, keeping the
// receiver's site name. It aggregates one textual call site that is
// registered on several clusters (e.g. one cluster per optimization
// level in the demo binaries).
func (s SiteStat) Add(o SiteStat) SiteStat {
	s.Calls += o.Calls
	s.LocalCalls += o.LocalCalls
	s.WireBytes += o.WireBytes
	s.ReuseHits += o.ReuseHits
	s.ReuseMisses += o.ReuseMisses
	s.CycleTablesAvoided += o.CycleTablesAvoided
	s.ClaimChecks += o.ClaimChecks
	s.ClaimViolations += o.ClaimViolations
	return s
}

func (s SiteStat) String() string {
	return fmt.Sprintf("%s: calls=%d (local=%d) wire=%dB reuse(hit=%d miss=%d) tablesAvoided=%d claims(checks=%d violations=%d)",
		s.Site, s.Calls, s.LocalCalls, s.WireBytes, s.ReuseHits, s.ReuseMisses,
		s.CycleTablesAvoided, s.ClaimChecks, s.ClaimViolations)
}
