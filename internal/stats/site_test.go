package stats

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The SiteCounters/SiteStat pair carries the same maintenance contract
// as Counters/Snapshot: every counter must appear in the snapshot (and
// vice versa), be copied by Snapshot, and be rendered by String.

func TestSiteStatCoversEverySiteCounter(t *testing.T) {
	var c SiteCounters
	ct := reflect.TypeOf(&c).Elem()
	st := reflect.TypeOf(SiteStat{})

	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		sf, ok := st.FieldByName(name)
		if !ok {
			t.Errorf("SiteCounters.%s has no SiteStat field", name)
			continue
		}
		if sf.Type.Kind() != reflect.Int64 {
			t.Errorf("SiteStat.%s is %s, want int64", name, sf.Type)
		}
	}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		if name == "Site" {
			continue // the key, not a counter
		}
		if _, ok := ct.FieldByName(name); !ok {
			t.Errorf("SiteStat.%s has no SiteCounters field", name)
		}
	}

	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < ct.NumField(); i++ {
		storeCounter(cv.Field(i), int64(2000+i))
	}
	sv := reflect.ValueOf(c.Snapshot("Work.go.1"))
	if got := sv.FieldByName("Site").String(); got != "Work.go.1" {
		t.Errorf("Snapshot site = %q", got)
	}
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		if got := sv.FieldByName(name).Int(); got != int64(2000+i) {
			t.Errorf("Snapshot().%s = %d, want %d (field not copied)", name, got, 2000+i)
		}
	}
}

func TestSiteStatStringMentionsEveryValue(t *testing.T) {
	var c SiteCounters
	cv := reflect.ValueOf(&c).Elem()
	for i := 0; i < cv.NumField(); i++ {
		storeCounter(cv.Field(i), int64(700001+i*3))
	}
	out := c.Snapshot("Main.main.1").String()
	if !strings.Contains(out, "Main.main.1") {
		t.Errorf("String() missing site name: %s", out)
	}
	for i := 0; i < cv.NumField(); i++ {
		sentinel := fmt.Sprintf("%d", 700001+i*3)
		if !strings.Contains(out, sentinel) {
			t.Errorf("String() missing %s (sentinel %s): %s",
				cv.Type().Field(i).Name, sentinel, out)
		}
	}
}

func TestSiteStatJSONTags(t *testing.T) {
	// The /callsites endpoint promises snake_case JSON keys; pin them.
	st := reflect.TypeOf(SiteStat{})
	for i := 0; i < st.NumField(); i++ {
		tag := st.Field(i).Tag.Get("json")
		if tag == "" {
			t.Errorf("SiteStat.%s has no json tag", st.Field(i).Name)
			continue
		}
		for _, r := range tag {
			if (r < 'a' || r > 'z') && r != '_' {
				t.Errorf("SiteStat.%s json tag %q not snake_case", st.Field(i).Name, tag)
				break
			}
		}
	}
}

func TestSiteStatAddSumsEveryField(t *testing.T) {
	st := reflect.TypeOf(SiteStat{})
	a := SiteStat{Site: "x"}
	b := SiteStat{Site: "y"}
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		av.Field(i).SetInt(int64(10 + i))
		bv.Field(i).SetInt(int64(100 + i))
	}
	sum := a.Add(b)
	if sum.Site != "x" {
		t.Errorf("Add site = %q, want receiver's %q", sum.Site, "x")
	}
	sv := reflect.ValueOf(sum)
	for i := 0; i < st.NumField(); i++ {
		if st.Field(i).Type.Kind() != reflect.Int64 {
			continue
		}
		if got, want := sv.Field(i).Int(), int64(110+2*i); got != want {
			t.Errorf("Add().%s = %d, want %d (field not summed)", st.Field(i).Name, got, want)
		}
	}
}
