// Package stats collects the runtime statistics that the paper reports
// in Tables 4, 6 and 8: reused objects, local/remote RPC counts, bytes
// allocated by deserialization ("new (MBytes)"), cycle-table lookups,
// and serializer invocation counts, plus wire-level accounting used by
// the virtual-time cost model.
package stats

import (
	"fmt"
	"sync/atomic"
)

// PaddedInt64 is an atomic.Int64 padded out to a full cache line, so
// two hot counters updated from different nodes' goroutines never
// share a line and ping-pong it between cores (false sharing). The
// embedded methods (Add, Load, Store) are used directly.
type PaddedInt64 struct {
	atomic.Int64
	_ [56]byte
}

// Counters accumulates runtime events. All fields are safe for
// concurrent use. A Counters value must not be copied after first use.
// The counters bumped on every serialized field or message are padded
// (PaddedInt64); rarely-touched fault counters stay unpadded.
type Counters struct {
	RemoteRPCs PaddedInt64  // RMIs on objects on another node
	LocalRPCs  atomic.Int64 // RMIs that happened to be node-local

	Messages  PaddedInt64 // network messages sent
	WireBytes PaddedInt64 // payload bytes put on the wire
	TypeBytes PaddedInt64 // bytes of per-object type information
	TypeOps   PaddedInt64 // type descriptor writes/parses avoided by site mode

	SerializerCalls PaddedInt64 // dynamic (per-class) serializer invocations
	InlinedWrites   PaddedInt64 // field writes inlined by call-site plans
	IntrospectOps   PaddedInt64 // introspection steps (class mode layout walks)

	CycleTables  PaddedInt64 // cycle hash-tables created
	CycleLookups PaddedInt64 // cycle hash-table lookups/inserts

	AllocObjects PaddedInt64 // objects allocated by deserialization
	AllocBytes   PaddedInt64 // bytes allocated by deserialization
	ReusedObjs   PaddedInt64 // objects reused instead of allocated
	ReusedBytes  PaddedInt64 // bytes reused instead of allocated

	AcksOnly atomic.Int64 // returns collapsed to a bare acknowledgment

	// Fault-tolerance counters (chaos mode).
	Retries        atomic.Int64 // call retransmissions after a deadline expiry
	Timeouts       atomic.Int64 // calls that failed with ErrTimeout/ErrPartitioned
	DupSuppressed  atomic.Int64 // redelivered calls absorbed by the callee dedup cache
	CorruptDropped atomic.Int64 // frames discarded on checksum mismatch
	StaleReplies   atomic.Int64 // replies arriving after their call completed

	// Claim-checker counters (audit mode, rmi.ClaimCheckPolicy).
	ClaimChecks     atomic.Int64 // sampled calls whose compile-time claims were re-verified
	ClaimViolations atomic.Int64 // claims found violated at runtime

	// Wire-robustness counters (versioned protocol).
	MalformedFrames atomic.Int64 // CRC-valid frames rejected by the hardened decoder
	PlanFallbacks   atomic.Int64 // objects demoted to class-level encoding by link negotiation

	// Asynchronous-RMI counters (futures, one-way calls, pipelining).
	AsyncCalls        atomic.Int64 // remote invocations issued through InvokeAsync
	OneWayCalls       atomic.Int64 // fire-and-forget invocations (no reply frame)
	OneWayErrors      atomic.Int64 // one-way executions that failed on the callee
	PromisedCalls     atomic.Int64 // calls whose results were published to a promise table
	PipelinedCalls    atomic.Int64 // calls carrying promise-handle arguments
	PromiseParks      atomic.Int64 // pipelined calls that had to wait for an unresolved promise
	PipelineFallbacks atomic.Int64 // pipelined sends demoted to resolve-then-send (link caps)

	// Frame-batching counters. NetFrames counts physical frames handed
	// to the transport (a batch container counts once), so
	// NetFrames/operations is the wire-efficiency "frames per op".
	NetFrames     PaddedInt64  // physical frames put on the wire
	BatchedFrames atomic.Int64 // logical frames that traveled inside a batch container
	BatchFlushes  atomic.Int64 // batch containers flushed onto the wire
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	RemoteRPCs, LocalRPCs                         int64
	Messages, WireBytes, TypeBytes, TypeOps       int64
	SerializerCalls, InlinedWrites, IntrospectOps int64
	CycleTables, CycleLookups                     int64
	AllocObjects, AllocBytes                      int64
	ReusedObjs, ReusedBytes                       int64
	AcksOnly                                      int64
	Retries, Timeouts, DupSuppressed              int64
	CorruptDropped, StaleReplies                  int64
	ClaimChecks, ClaimViolations                  int64
	MalformedFrames, PlanFallbacks                int64
	AsyncCalls, OneWayCalls, OneWayErrors         int64
	PromisedCalls, PipelinedCalls, PromiseParks   int64
	PipelineFallbacks                             int64
	NetFrames, BatchedFrames, BatchFlushes        int64
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		RemoteRPCs:        c.RemoteRPCs.Load(),
		LocalRPCs:         c.LocalRPCs.Load(),
		Messages:          c.Messages.Load(),
		WireBytes:         c.WireBytes.Load(),
		TypeBytes:         c.TypeBytes.Load(),
		TypeOps:           c.TypeOps.Load(),
		SerializerCalls:   c.SerializerCalls.Load(),
		InlinedWrites:     c.InlinedWrites.Load(),
		IntrospectOps:     c.IntrospectOps.Load(),
		CycleTables:       c.CycleTables.Load(),
		CycleLookups:      c.CycleLookups.Load(),
		AllocObjects:      c.AllocObjects.Load(),
		AllocBytes:        c.AllocBytes.Load(),
		ReusedObjs:        c.ReusedObjs.Load(),
		ReusedBytes:       c.ReusedBytes.Load(),
		AcksOnly:          c.AcksOnly.Load(),
		Retries:           c.Retries.Load(),
		Timeouts:          c.Timeouts.Load(),
		DupSuppressed:     c.DupSuppressed.Load(),
		CorruptDropped:    c.CorruptDropped.Load(),
		StaleReplies:      c.StaleReplies.Load(),
		ClaimChecks:       c.ClaimChecks.Load(),
		ClaimViolations:   c.ClaimViolations.Load(),
		MalformedFrames:   c.MalformedFrames.Load(),
		PlanFallbacks:     c.PlanFallbacks.Load(),
		AsyncCalls:        c.AsyncCalls.Load(),
		OneWayCalls:       c.OneWayCalls.Load(),
		OneWayErrors:      c.OneWayErrors.Load(),
		PromisedCalls:     c.PromisedCalls.Load(),
		PipelinedCalls:    c.PipelinedCalls.Load(),
		PromiseParks:      c.PromiseParks.Load(),
		PipelineFallbacks: c.PipelineFallbacks.Load(),
		NetFrames:         c.NetFrames.Load(),
		BatchedFrames:     c.BatchedFrames.Load(),
		BatchFlushes:      c.BatchFlushes.Load(),
	}
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.RemoteRPCs.Store(0)
	c.LocalRPCs.Store(0)
	c.Messages.Store(0)
	c.WireBytes.Store(0)
	c.TypeBytes.Store(0)
	c.TypeOps.Store(0)
	c.SerializerCalls.Store(0)
	c.InlinedWrites.Store(0)
	c.IntrospectOps.Store(0)
	c.CycleTables.Store(0)
	c.CycleLookups.Store(0)
	c.AllocObjects.Store(0)
	c.AllocBytes.Store(0)
	c.ReusedObjs.Store(0)
	c.ReusedBytes.Store(0)
	c.AcksOnly.Store(0)
	c.Retries.Store(0)
	c.Timeouts.Store(0)
	c.DupSuppressed.Store(0)
	c.CorruptDropped.Store(0)
	c.StaleReplies.Store(0)
	c.ClaimChecks.Store(0)
	c.ClaimViolations.Store(0)
	c.MalformedFrames.Store(0)
	c.PlanFallbacks.Store(0)
	c.AsyncCalls.Store(0)
	c.OneWayCalls.Store(0)
	c.OneWayErrors.Store(0)
	c.PromisedCalls.Store(0)
	c.PipelinedCalls.Store(0)
	c.PromiseParks.Store(0)
	c.PipelineFallbacks.Store(0)
	c.NetFrames.Store(0)
	c.BatchedFrames.Store(0)
	c.BatchFlushes.Store(0)
}

// Sub returns s - t field-wise (statistics accumulated between two
// snapshots).
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		RemoteRPCs:        s.RemoteRPCs - t.RemoteRPCs,
		LocalRPCs:         s.LocalRPCs - t.LocalRPCs,
		Messages:          s.Messages - t.Messages,
		WireBytes:         s.WireBytes - t.WireBytes,
		TypeBytes:         s.TypeBytes - t.TypeBytes,
		TypeOps:           s.TypeOps - t.TypeOps,
		SerializerCalls:   s.SerializerCalls - t.SerializerCalls,
		InlinedWrites:     s.InlinedWrites - t.InlinedWrites,
		IntrospectOps:     s.IntrospectOps - t.IntrospectOps,
		CycleTables:       s.CycleTables - t.CycleTables,
		CycleLookups:      s.CycleLookups - t.CycleLookups,
		AllocObjects:      s.AllocObjects - t.AllocObjects,
		AllocBytes:        s.AllocBytes - t.AllocBytes,
		ReusedObjs:        s.ReusedObjs - t.ReusedObjs,
		ReusedBytes:       s.ReusedBytes - t.ReusedBytes,
		AcksOnly:          s.AcksOnly - t.AcksOnly,
		Retries:           s.Retries - t.Retries,
		Timeouts:          s.Timeouts - t.Timeouts,
		DupSuppressed:     s.DupSuppressed - t.DupSuppressed,
		CorruptDropped:    s.CorruptDropped - t.CorruptDropped,
		StaleReplies:      s.StaleReplies - t.StaleReplies,
		ClaimChecks:       s.ClaimChecks - t.ClaimChecks,
		ClaimViolations:   s.ClaimViolations - t.ClaimViolations,
		MalformedFrames:   s.MalformedFrames - t.MalformedFrames,
		PlanFallbacks:     s.PlanFallbacks - t.PlanFallbacks,
		AsyncCalls:        s.AsyncCalls - t.AsyncCalls,
		OneWayCalls:       s.OneWayCalls - t.OneWayCalls,
		OneWayErrors:      s.OneWayErrors - t.OneWayErrors,
		PromisedCalls:     s.PromisedCalls - t.PromisedCalls,
		PipelinedCalls:    s.PipelinedCalls - t.PipelinedCalls,
		PromiseParks:      s.PromiseParks - t.PromiseParks,
		PipelineFallbacks: s.PipelineFallbacks - t.PipelineFallbacks,
		NetFrames:         s.NetFrames - t.NetFrames,
		BatchedFrames:     s.BatchedFrames - t.BatchedFrames,
		BatchFlushes:      s.BatchFlushes - t.BatchFlushes,
	}
}

// NewMBytes reports deserialization-allocated megabytes, the paper's
// "new (MBytes)" column.
func (s Snapshot) NewMBytes() float64 { return float64(s.AllocBytes) / (1 << 20) }

func (s Snapshot) String() string {
	return fmt.Sprintf(
		"rpcs(local=%d remote=%d) msgs=%d wire=%dB type=%dB serCalls=%d inlined=%d cycleTables=%d cycleLookups=%d alloc(%d objs, %.2f MB) reused=%d "+
			"faults(retries=%d timeouts=%d dupSuppressed=%d corruptDropped=%d staleReplies=%d) claims(checks=%d violations=%d) "+
			"wire(malformed=%d planFallbacks=%d) "+
			"async(calls=%d oneWay=%d oneWayErrs=%d promised=%d pipelined=%d parks=%d fallbacks=%d) "+
			"batch(netFrames=%d batched=%d flushes=%d)",
		s.LocalRPCs, s.RemoteRPCs, s.Messages, s.WireBytes, s.TypeBytes,
		s.SerializerCalls, s.InlinedWrites, s.CycleTables, s.CycleLookups,
		s.AllocObjects, s.NewMBytes(), s.ReusedObjs,
		s.Retries, s.Timeouts, s.DupSuppressed, s.CorruptDropped, s.StaleReplies,
		s.ClaimChecks, s.ClaimViolations,
		s.MalformedFrames, s.PlanFallbacks,
		s.AsyncCalls, s.OneWayCalls, s.OneWayErrors, s.PromisedCalls, s.PipelinedCalls, s.PromiseParks, s.PipelineFallbacks,
		s.NetFrames, s.BatchedFrames, s.BatchFlushes)
}
