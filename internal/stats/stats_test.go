package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndReset(t *testing.T) {
	var c Counters
	c.RemoteRPCs.Add(3)
	c.LocalRPCs.Add(2)
	c.CycleLookups.Add(7)
	c.AllocBytes.Add(1 << 20)
	c.ReusedObjs.Add(5)
	s := c.Snapshot()
	if s.RemoteRPCs != 3 || s.LocalRPCs != 2 || s.CycleLookups != 7 || s.ReusedObjs != 5 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.NewMBytes() != 1.0 {
		t.Fatalf("NewMBytes = %g", s.NewMBytes())
	}
	c.Reset()
	if z := c.Snapshot(); z != (Snapshot{}) {
		t.Fatalf("reset left %+v", z)
	}
}

func TestSub(t *testing.T) {
	var c Counters
	c.Messages.Add(10)
	before := c.Snapshot()
	c.Messages.Add(5)
	c.WireBytes.Add(100)
	d := c.Snapshot().Sub(before)
	if d.Messages != 5 || d.WireBytes != 100 {
		t.Fatalf("delta: %+v", d)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.SerializerCalls.Add(1)
				c.InlinedWrites.Add(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.SerializerCalls != 8000 || s.InlinedWrites != 16000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestStringRendering(t *testing.T) {
	var c Counters
	c.RemoteRPCs.Add(1)
	c.AllocObjects.Add(2)
	out := c.Snapshot().String()
	for _, frag := range []string{"remote=1", "2 objs", "reused=0"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("String() missing %q: %s", frag, out)
		}
	}
}

func TestRecoveryCountersRoundTrip(t *testing.T) {
	var c Counters
	c.Retries.Add(4)
	c.Timeouts.Add(1)
	c.DupSuppressed.Add(3)
	c.CorruptDropped.Add(2)
	c.StaleReplies.Add(5)
	before := c.Snapshot()
	if before.Retries != 4 || before.Timeouts != 1 || before.DupSuppressed != 3 ||
		before.CorruptDropped != 2 || before.StaleReplies != 5 {
		t.Fatalf("snapshot lost recovery counters: %+v", before)
	}
	c.Retries.Add(6)
	c.CorruptDropped.Add(1)
	d := c.Snapshot().Sub(before)
	if d.Retries != 6 || d.CorruptDropped != 1 || d.Timeouts != 0 {
		t.Fatalf("delta: %+v", d)
	}
	c.Reset()
	if z := c.Snapshot(); z != (Snapshot{}) {
		t.Fatalf("reset left %+v", z)
	}
}
