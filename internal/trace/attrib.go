package trace

// Tail-latency attribution: per-site phase blame, slow-call exemplars,
// and the mergeable snapshot any node or collector can fold into a
// cluster-wide view (DESIGN.md §14).
//
// Blame is recorded on the span-close path (trace.go close); this file
// holds the read side — exemplar capture and the Attribution snapshot
// whose log2 histograms merge exactly across nodes — plus
// MergeAttributions, the fold the /cluster endpoint and rmitop use.

import (
	"sort"

	"cormi/internal/metrics"
)

// PhaseSlice is one recorded phase of an exemplar's span, rendered for
// humans (phase name instead of index, zero phases dropped).
type PhaseSlice struct {
	Phase   string `json:"phase"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Exemplar is one retained slow call: a call whose end-to-end latency
// exceeded its site's adaptive p99 threshold at close time. Both span
// halves are kept when the callee ran in the same process (the flight
// recorder is node-local, so a remote callee's half lives in the
// peer's tracer).
type Exemplar struct {
	Site         string       `json:"site"`
	Method       string       `json:"method"`
	From         int          `json:"from"`
	To           int          `json:"to"`
	Seq          int64        `json:"seq"`
	TotalNS      int64        `json:"total_ns"`
	ThresholdNS  int64        `json:"threshold_ns"`
	CapturedWall int64        `json:"captured_wall_ns"`
	Err          string       `json:"err,omitempty"`
	Retries      int          `json:"retries,omitempty"`
	// TraceID links a sampled slow call to its distributed trace
	// (/traces/<id>); zero when the call was not sampled.
	TraceID uint64 `json:"trace_id,omitempty"`
	Blame   string `json:"blame"`
	Caller       []PhaseSlice `json:"caller"`
	Callee       []PhaseSlice `json:"callee,omitempty"`
	// Spans carries the raw records for the Perfetto export
	// (/slow/trace); the JSON view above is self-contained without it.
	Spans []SpanRecord `json:"-"`
}

// phaseSlices renders a record's populated phases.
func phaseSlices(r *SpanRecord) []PhaseSlice {
	var out []PhaseSlice
	for p := Phase(0); p < NumPhases; p++ {
		if d := r.PhaseDur[p]; d > 0 {
			out = append(out, PhaseSlice{Phase: p.String(), StartNS: r.PhaseStart[p], DurNS: d})
		}
	}
	return out
}

// dominantPhase returns the longest blamable phase across the given
// span records ("" when none recorded).
func dominantPhase(spans []SpanRecord) string {
	best, bp := int64(0), -1
	for i := range spans {
		for p := range spans[i].PhaseDur {
			if !blamable(Phase(p)) {
				continue
			}
			if d := spans[i].PhaseDur[p]; d > best {
				best, bp = d, p
			}
		}
	}
	if bp < 0 {
		return ""
	}
	return Phase(bp).String()
}

// captureExemplar retains a slow caller span (already pushed to the
// flight recorder) plus its same-process callee half. Called only for
// calls past the site's p99 threshold, so allocation here is off the
// common path by construction.
func (t *Tracer) captureExemplar(st *siteState, rec *SpanRecord, tot int64) {
	ex := Exemplar{
		Site: rec.Site, Method: rec.Method, From: rec.From, To: rec.To,
		Seq: rec.Seq, TotalNS: tot, ThresholdNS: st.threshold.Load(),
		CapturedWall: Now(), Err: rec.Err, Retries: rec.Retries,
		TraceID: rec.TraceID,
	}
	ex.Spans = append(ex.Spans, *rec)

	// The callee half of the same call closed before the caller
	// received the reply, so when it ran in this process it is already
	// in the ring; scan newest-first.
	t.ringMu.Lock()
	n, size := t.ringN, uint64(len(t.ring))
	count := n
	if count > size {
		count = size
	}
	for i := uint64(0); i < count; i++ {
		r := &t.ring[(n-1-i)%size]
		if r.Kind == KindCallee && r.From == rec.From && r.Seq == rec.Seq && r.Site == rec.Site {
			ex.Spans = append(ex.Spans, *r)
			break
		}
	}
	t.ringMu.Unlock()

	ex.Caller = phaseSlices(&ex.Spans[0])
	if len(ex.Spans) > 1 {
		ex.Callee = phaseSlices(&ex.Spans[1])
	}
	ex.Blame = dominantPhase(ex.Spans)

	st.exemplars.Add(1)
	t.exemplarsTotal.Add(1)
	t.exMu.Lock()
	t.exs[t.exN%uint64(len(t.exs))] = ex
	t.exN++
	t.exMu.Unlock()
}

// Slow returns the retained slow-call exemplars, newest first. The
// slice is a private copy.
func (t *Tracer) Slow() []Exemplar {
	if t == nil {
		return nil
	}
	t.exMu.Lock()
	defer t.exMu.Unlock()
	n, size := t.exN, uint64(len(t.exs))
	count := n
	if count > size {
		count = size
	}
	out := make([]Exemplar, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.exs[(n-1-i)%size])
	}
	return out
}

// Exemplars returns the total slow-call exemplars captured so far
// (monotone; the ring itself is bounded).
func (t *Tracer) Exemplars() int64 {
	if t == nil {
		return 0
	}
	return t.exemplarsTotal.Load()
}

// BlamePhase is one phase's share of a site's attribution: how many
// spans it dominated (wins) and its accumulated self time.
type BlamePhase struct {
	Phase  string `json:"phase"`
	Wins   int64  `json:"wins"`
	SelfNS int64  `json:"self_ns"`
}

// PhaseHist is one phase's latency distribution, snapshot form.
type PhaseHist struct {
	Phase string               `json:"phase"`
	Hist  metrics.HistSnapshot `json:"hist"`
}

// SiteAttribution is one site's complete attribution snapshot. Every
// field merges across nodes: histograms bucket-wise (exact for log2
// buckets), counters by sum, the threshold by max (the most demanding
// armed estimate wins). MergeAttributions implements the fold; keep it
// in sync with this struct — the completeness test in attrib_test.go
// fails if a field is added but not merged.
type SiteAttribution struct {
	Site string `json:"site"`
	// Calls counts caller-observed calls (the Total histogram's count):
	// the serving node of a remote call contributes phases and blame
	// but no Calls, so cluster-wide Calls never double-counts.
	Calls uint64 `json:"calls"`
	// Total is the caller-observed end-to-end latency distribution;
	// cluster p50/p95/p99 derive from the merged snapshot.
	Total       metrics.HistSnapshot `json:"total"`
	Phases      []PhaseHist          `json:"phases,omitempty"`
	Blame       []BlamePhase         `json:"blame,omitempty"`
	ThresholdNS int64                `json:"threshold_ns"`
	Exemplars   int64                `json:"exemplars"`
}

// TopBlame returns the site's dominant phase by self time and its
// share of all attributed self time ("", 0 when nothing recorded).
func (sa *SiteAttribution) TopBlame() (string, float64) {
	var sum, best int64
	bp := ""
	for _, b := range sa.Blame {
		sum += b.SelfNS
		if b.SelfNS > best {
			best, bp = b.SelfNS, b.Phase
		}
	}
	if sum == 0 {
		return "", 0
	}
	return bp, float64(best) / float64(sum)
}

// Attribution snapshots every site's attribution state, sorted by site
// name. The result is self-contained and mergeable (see
// MergeAttributions); /snapshot serves it verbatim.
func (t *Tracer) Attribution() []SiteAttribution {
	if t == nil {
		return nil
	}
	var out []SiteAttribution
	t.sites.Range(func(k, v any) bool {
		st := v.(*siteState)
		sa := SiteAttribution{
			Site:        k.(string),
			Total:       st.total.Snapshot(),
			ThresholdNS: st.threshold.Load(),
			Exemplars:   st.exemplars.Load(),
		}
		sa.Calls = sa.Total.Total
		for p := Phase(0); p < NumPhases; p++ {
			if snap := st.hists[p].Snapshot(); snap.Total > 0 {
				sa.Phases = append(sa.Phases, PhaseHist{Phase: p.String(), Hist: snap})
			}
			w, s := st.wins[p].Load(), st.self[p].Load()
			if w > 0 || s > 0 {
				sa.Blame = append(sa.Blame, BlamePhase{Phase: p.String(), Wins: w, SelfNS: s})
			}
		}
		out = append(out, sa)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// MergeAttributions folds any number of per-node attribution snapshots
// into one cluster-wide view, merging rows site-wise: histogram
// snapshots add bucket-wise (exact), counters sum, thresholds take the
// max. Phases and blame rows are re-sorted into phase order, so
// merging a single snapshot with nothing is the identity — the
// completeness test relies on that.
func MergeAttributions(groups ...[]SiteAttribution) []SiteAttribution {
	bySite := make(map[string]*SiteAttribution)
	var order []string
	for _, g := range groups {
		for i := range g {
			sa := &g[i]
			m, ok := bySite[sa.Site]
			if !ok {
				m = &SiteAttribution{Site: sa.Site}
				bySite[sa.Site] = m
				order = append(order, sa.Site)
			}
			m.Calls += sa.Calls
			m.Total = m.Total.Merge(sa.Total)
			for _, ph := range sa.Phases {
				mergePhaseHist(&m.Phases, ph)
			}
			for _, b := range sa.Blame {
				mergeBlame(&m.Blame, b)
			}
			if sa.ThresholdNS > m.ThresholdNS {
				m.ThresholdNS = sa.ThresholdNS
			}
			m.Exemplars += sa.Exemplars
		}
	}
	sort.Strings(order)
	out := make([]SiteAttribution, 0, len(order))
	for _, site := range order {
		m := bySite[site]
		sort.Slice(m.Phases, func(i, j int) bool {
			return phaseIndex(m.Phases[i].Phase) < phaseIndex(m.Phases[j].Phase)
		})
		sort.Slice(m.Blame, func(i, j int) bool {
			return phaseIndex(m.Blame[i].Phase) < phaseIndex(m.Blame[j].Phase)
		})
		out = append(out, *m)
	}
	return out
}

func mergePhaseHist(dst *[]PhaseHist, ph PhaseHist) {
	for i := range *dst {
		if (*dst)[i].Phase == ph.Phase {
			(*dst)[i].Hist = (*dst)[i].Hist.Merge(ph.Hist)
			return
		}
	}
	*dst = append(*dst, ph)
}

func mergeBlame(dst *[]BlamePhase, b BlamePhase) {
	for i := range *dst {
		if (*dst)[i].Phase == b.Phase {
			(*dst)[i].Wins += b.Wins
			(*dst)[i].SelfNS += b.SelfNS
			return
		}
	}
	*dst = append(*dst, b)
}
