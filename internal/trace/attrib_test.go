package trace

import (
	"reflect"
	"testing"
)

// backdated opens a caller span whose Start is shifted ns into the
// past, so the close path sees a controlled end-to-end latency without
// sleeping.
func backdated(tr *Tracer, site string, seq, ns int64) *Span {
	sp := tr.StartCaller(site, "m", 0, 1, seq)
	sp.Start = Now() - ns
	return sp
}

func siteAttr(t *testing.T, tr *Tracer, site string) SiteAttribution {
	t.Helper()
	for _, sa := range tr.Attribution() {
		if sa.Site == site {
			return sa
		}
	}
	t.Fatalf("site %q missing from Attribution: %+v", site, tr.Attribution())
	return SiteAttribution{}
}

func blameOf(sa SiteAttribution, phase string) BlamePhase {
	for _, b := range sa.Blame {
		if b.Phase == phase {
			return b
		}
	}
	return BlamePhase{}
}

func TestBlameClassification(t *testing.T) {
	tr := New(Config{RingSize: 16})
	// Two spans dominated by execute, one by serialize. wait_reply and
	// future_wait are containers over the others and must never win nor
	// contribute self time.
	for i := 0; i < 2; i++ {
		sp := tr.StartCallee("S.x.1", "x", 0, 1, int64(i), 0)
		sp.SetPhase(PhaseExecute, Now(), 5000)
		sp.SetPhase(PhaseDeserialize, Now(), 100)
		sp.End()
	}
	sp := backdated(tr, "S.x.1", 2, 10000)
	sp.SetPhase(PhaseSerialize, Now(), 3000)
	sp.SetPhase(PhaseWaitReply, Now(), 9000)
	sp.SetPhase(PhaseFutureWait, Now(), 8000)
	sp.End()

	sa := siteAttr(t, tr, "S.x.1")
	if b := blameOf(sa, "execute"); b.Wins != 2 || b.SelfNS != 10000 {
		t.Errorf("execute blame = %+v, want wins 2 self 10000", b)
	}
	if b := blameOf(sa, "serialize"); b.Wins != 1 || b.SelfNS != 3000 {
		t.Errorf("serialize blame = %+v, want wins 1 self 3000", b)
	}
	for _, container := range []string{"wait_reply", "future_wait"} {
		if b := blameOf(sa, container); b.Wins != 0 || b.SelfNS != 0 {
			t.Errorf("%s blame = %+v, want excluded from blame", container, b)
		}
	}
	if phase, share := sa.TopBlame(); phase != "execute" || share <= 0.5 {
		t.Errorf("TopBlame = %q %.2f, want execute with majority share", phase, share)
	}
	// Calls counts caller spans only.
	if sa.Calls != 1 {
		t.Errorf("Calls = %d, want 1 (caller spans only)", sa.Calls)
	}
}

func TestExemplarCaptureAdaptiveThreshold(t *testing.T) {
	tr := New(Config{RingSize: 64, ExemplarWarmup: 8, ExemplarRefresh: 8})
	const site = "S.slow.1"
	// Warmup: 8 fast calls (~1µs) arm the threshold at the site's p99.
	for i := 0; i < 8; i++ {
		backdated(tr, site, int64(i), 1000).End()
	}
	sa := siteAttr(t, tr, site)
	if sa.ThresholdNS <= 0 {
		t.Fatalf("threshold not armed after warmup: %+v", sa)
	}
	if tr.Exemplars() != 0 {
		t.Fatalf("fast warmup calls captured %d exemplars", tr.Exemplars())
	}

	// The callee half closes first (same process): it lands in the ring
	// and the slow caller's exemplar must pick it up by (from, seq).
	callee := tr.StartCallee(site, "m", 0, 1, 99, 0)
	callee.SetPhase(PhaseExecute, Now(), 4_500_000)
	callee.End()
	slow := backdated(tr, site, 99, 5_000_000)
	slow.SetPhase(PhaseReplyDeserialize, Now(), 2000)
	slow.End()

	if tr.Exemplars() != 1 {
		t.Fatalf("Exemplars = %d, want 1", tr.Exemplars())
	}
	exs := tr.Slow()
	if len(exs) != 1 {
		t.Fatalf("Slow() returned %d exemplars, want 1", len(exs))
	}
	ex := exs[0]
	if ex.Site != site || ex.Seq != 99 || ex.TotalNS < 4_000_000 {
		t.Errorf("exemplar = %+v, want the seq-99 slow call", ex)
	}
	if ex.ThresholdNS <= 0 || ex.TotalNS <= ex.ThresholdNS {
		t.Errorf("exemplar total %d not past threshold %d", ex.TotalNS, ex.ThresholdNS)
	}
	if len(ex.Callee) == 0 {
		t.Fatalf("exemplar missing callee half: %+v", ex)
	}
	if ex.Blame != "execute" {
		t.Errorf("exemplar blame = %q, want execute (the 4.5ms callee phase)", ex.Blame)
	}
	if len(ex.Spans) != 2 {
		t.Errorf("exemplar retained %d spans, want caller+callee", len(ex.Spans))
	}
	if sa := siteAttr(t, tr, site); sa.Exemplars != 1 {
		t.Errorf("site Exemplars = %d, want 1", sa.Exemplars)
	}
}

func TestExemplarMinNSKeepsCaptureArmedButSilent(t *testing.T) {
	tr := New(Config{ExemplarWarmup: 4, ExemplarRefresh: 4, ExemplarMinNS: 1 << 60})
	const site = "S.fast.1"
	for i := 0; i < 64; i++ {
		backdated(tr, site, int64(i), 2_000_000).End()
	}
	sa := siteAttr(t, tr, site)
	if sa.ThresholdNS != 1<<60 {
		t.Errorf("threshold = %d, want the 1<<60 floor", sa.ThresholdNS)
	}
	if tr.Exemplars() != 0 || sa.Exemplars != 0 {
		t.Errorf("floored threshold still captured %d exemplars", tr.Exemplars())
	}
}

func TestExemplarRingBounds(t *testing.T) {
	tr := New(Config{ExemplarRing: 2, ExemplarWarmup: 2, ExemplarRefresh: 1 << 40})
	const site = "S.ring.1"
	backdated(tr, site, 0, 1000).End()
	backdated(tr, site, 1, 1000).End() // arms threshold at ~µs scale
	for i := int64(2); i < 7; i++ {
		backdated(tr, site, i, 10_000_000).End()
	}
	if tr.Exemplars() != 5 {
		t.Fatalf("Exemplars = %d, want 5", tr.Exemplars())
	}
	exs := tr.Slow()
	if len(exs) != 2 {
		t.Fatalf("ring holds %d exemplars, want 2", len(exs))
	}
	// Newest first: the last two captures are seq 6 then seq 5.
	if exs[0].Seq != 6 || exs[1].Seq != 5 {
		t.Errorf("Slow() order = seq %d, %d; want 6, 5", exs[0].Seq, exs[1].Seq)
	}
}

func TestRecordFlush(t *testing.T) {
	tr := New(Config{RingSize: 8})
	tr.RecordFlush("link.0->1", 0, 1, 5, Now()-100_000)

	rec := tr.Recent()
	if len(rec) != 1 || rec[0].Batch != 5 || rec[0].Site != "link.0->1" {
		t.Fatalf("flush record = %+v, want link.0->1 with Batch 5", rec)
	}
	if d := rec[0].PhaseDur[PhaseBatchWait]; d < 50_000 {
		t.Errorf("batch_wait dur = %d, want ~100µs", d)
	}
	sa := siteAttr(t, tr, "link.0->1")
	if b := blameOf(sa, "batch_wait"); b.Wins != 1 || b.SelfNS < 50_000 {
		t.Errorf("batch_wait blame = %+v", b)
	}
	// Flush spans are link bookkeeping, not calls: no total-latency
	// observation, no exemplar eligibility.
	if sa.Calls != 0 {
		t.Errorf("flush span counted as a call: %+v", sa)
	}

	// Nil tracer and empty flushes are no-ops.
	var nilT *Tracer
	nilT.RecordFlush("link.0->1", 0, 1, 3, Now())
	tr.RecordFlush("link.0->1", 0, 1, 0, Now())
	if got := len(tr.Recent()); got != 1 {
		t.Errorf("empty flush recorded: %d records", got)
	}
}

func TestAttributionMergeMatchesSingleTracer(t *testing.T) {
	// The same span stream split across two tracers (two "nodes") and
	// merged must equal the stream recorded into one tracer — the
	// histogram-merge exactness lifted to the attribution level. The
	// records are closed directly (not via End, which stamps the wall
	// clock) so both recordings are bit-identical.
	record := func(tr *Tracer, i int64) {
		s := tr.pool.Get().(*Span)
		s.SpanRecord = SpanRecord{
			Site: "S.m.1", Method: "m", From: 0, To: 1, Seq: i,
			Kind: KindCaller, Start: 1000, End: 1000 + 1000*(i+1),
		}
		s.t = tr
		s.SetPhase(PhaseExecute, 1000, 500*(i+1))
		s.SetPhase(PhaseSerialize, 1000, 100)
		tr.close(s)
	}
	one := New(Config{RingSize: 32})
	a := New(Config{RingSize: 32})
	b := New(Config{RingSize: 32})
	for i := int64(0); i < 40; i++ {
		dst := a
		if i%2 == 1 {
			dst = b
		}
		record(one, i)
		record(dst, i)
	}
	merged := MergeAttributions(a.Attribution(), b.Attribution())
	want := one.Attribution()
	// Thresholds may differ (armed from different sub-streams): they
	// merge by max, not sum, so zero them before the deep compare.
	for i := range merged {
		merged[i].ThresholdNS = 0
	}
	for i := range want {
		want[i].ThresholdNS = 0
	}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged attribution != single-tracer attribution\nmerged: %+v\nwant:   %+v", merged, want)
	}
}

// TestMergeAttributionsCoversEveryField is the drift guard: a fully
// populated SiteAttribution merged alone must come back unchanged. A
// field added to the struct but not to MergeAttributions drops to its
// zero value and fails the DeepEqual; a field added but not populated
// here fails the IsZero sweep, forcing this test to keep pace.
func TestMergeAttributionsCoversEveryField(t *testing.T) {
	sa := SiteAttribution{
		Site:        "S.full.1",
		Calls:       7,
		ThresholdNS: 12345,
		Exemplars:   3,
	}
	sa.Total.Buckets[10] = 7
	sa.Total.Sum = 7000
	sa.Total.Total = 7
	ph := PhaseHist{Phase: "execute"}
	ph.Hist.Buckets[9] = 7
	ph.Hist.Sum = 3500
	ph.Hist.Total = 7
	sa.Phases = []PhaseHist{ph}
	sa.Blame = []BlamePhase{{Phase: "execute", Wins: 7, SelfNS: 3500}}

	v := reflect.ValueOf(sa)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("field %s not populated by this test; update it (and MergeAttributions) for the new field",
				v.Type().Field(i).Name)
		}
	}
	merged := MergeAttributions([]SiteAttribution{sa})
	if len(merged) != 1 || !reflect.DeepEqual(merged[0], sa) {
		t.Fatalf("identity merge dropped a field\nmerged: %+v\nwant:   %+v", merged, sa)
	}

	// Two copies double every summed field and keep the max'd ones.
	doubled := MergeAttributions([]SiteAttribution{sa}, []SiteAttribution{sa})[0]
	if doubled.Calls != 14 || doubled.Total.Total != 14 || doubled.Exemplars != 6 {
		t.Errorf("summed fields wrong after self-merge: %+v", doubled)
	}
	if doubled.ThresholdNS != 12345 {
		t.Errorf("ThresholdNS = %d, want max semantics (12345)", doubled.ThresholdNS)
	}
	if doubled.Blame[0].Wins != 14 || doubled.Blame[0].SelfNS != 7000 {
		t.Errorf("blame not summed: %+v", doubled.Blame)
	}
}

func TestNilTracerAttributionSurface(t *testing.T) {
	var tr *Tracer
	if tr.Attribution() != nil || tr.Slow() != nil || tr.Exemplars() != 0 {
		t.Fatal("nil tracer attribution surface must be empty")
	}
	var sp *Span
	sp.SetOneWay()
}
