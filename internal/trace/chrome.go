package trace

import (
	"encoding/json"
	"io"
)

// Chrome trace-event exporter: renders flight-recorder span records as
// a Chrome/Perfetto-loadable JSON object ({"traceEvents": [...]}).
// Each node becomes a process; each span half becomes a complete ("X")
// event on the node's caller or callee track, with one sub-event per
// recorded phase. Open chrome://tracing or https://ui.perfetto.dev and
// load the file.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chrome track ids: one synthetic thread per span kind.
const (
	tidCaller = 1
	tidCallee = 2
)

// WriteChrome renders spans as Chrome trace-event JSON. The optional
// reason tags the dump (flight-recorder failure dumps set it).
// Timestamps are rebased to the earliest span so the timeline starts
// near zero.
func WriteChrome(w io.Writer, spans []SpanRecord, reason string) error {
	var epoch int64
	for i := range spans {
		if s := spans[i].Start; epoch == 0 || (s > 0 && s < epoch) {
			epoch = s
		}
	}
	us := func(ns int64) float64 { return float64(ns-epoch) / 1e3 }

	tr := chromeTrace{DisplayTimeUnit: "ms"}
	if reason != "" {
		tr.OtherData = map[string]any{"reason": reason}
	}
	seenPID := map[int]bool{}
	for i := range spans {
		s := &spans[i]
		pid, tid := s.From, tidCaller
		if s.Kind == KindCallee {
			pid, tid = s.To, tidCallee
		}
		if !seenPID[pid] {
			seenPID[pid] = true
			tr.TraceEvents = append(tr.TraceEvents,
				chromeEvent{Name: "process_name", Ph: "M", PID: pid, TID: 0,
					Args: map[string]any{"name": "node"}},
				chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidCaller,
					Args: map[string]any{"name": "caller"}},
				chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidCallee,
					Args: map[string]any{"name": "callee"}},
			)
		}
		args := map[string]any{
			"site": s.Site, "method": s.Method, "from": s.From, "to": s.To,
			"seq": s.Seq, "kind": s.Kind.String(),
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		if s.Retries > 0 {
			args["retries"] = s.Retries
		}
		if s.VirtualTransitNS > 0 {
			args["virtual_transit_ns"] = s.VirtualTransitNS
		}
		// One-way calls and batch-flush spans are full spans in their own
		// right (a one-way caller half ends at wire handoff; a flush span
		// covers the container's wait) — tag them so a /slow exemplar of
		// batched or fire-and-forget traffic reads unambiguously.
		cat := s.Kind.String()
		if s.OneWay {
			args["one_way"] = true
		}
		if s.Batch > 0 {
			args["batched_frames"] = s.Batch
			cat = "batch"
		}
		dur := float64(s.End-s.Start) / 1e3
		if dur <= 0 {
			dur = 0.001
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Site, Ph: "X", Cat: cat,
			TS: us(s.Start), Dur: dur, PID: pid, TID: tid, Args: args,
		})
		for p := Phase(0); p < NumPhases; p++ {
			d := s.PhaseDur[p]
			if d <= 0 {
				continue
			}
			start := s.PhaseStart[p]
			if start == 0 {
				start = s.Start
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: p.String(), Ph: "X", Cat: "phase",
				TS: us(start), Dur: float64(d) / 1e3, PID: pid, TID: tid,
				Args: map[string]any{"seq": s.Seq},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
