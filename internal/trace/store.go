package trace

import (
	"sort"
	"sync"
)

// traceStore is the bounded per-trace span retention behind the
// /traces endpoints: closed spans carrying a trace ID are appended to
// their trace's bucket. Both dimensions are capped — MaxTraces traces
// (FIFO eviction, evicted buckets recycled through a free list so the
// steady state reuses span storage instead of reallocating it) and
// MaxSpansPerTrace spans per trace (overflow counted, not stored).
type traceStore struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[uint64]*traceBucket
	order     []uint64       // insertion order, oldest first
	free      []*traceBucket // recycled buckets of evicted traces
	evicted   int64
	dropped   int64 // spans rejected by the per-trace cap
}

type traceBucket struct {
	spans []SpanRecord
	drops int
}

func newTraceStore(maxTraces, maxSpans int) *traceStore {
	return &traceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[uint64]*traceBucket, maxTraces),
	}
}

func (ts *traceStore) insert(rec *SpanRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	b := ts.traces[rec.TraceID]
	if b == nil {
		if len(ts.order) >= ts.maxTraces {
			// Evict the oldest trace; its bucket (and span storage)
			// comes right back for the new one.
			old := ts.order[0]
			ts.order = ts.order[1:]
			if ob := ts.traces[old]; ob != nil {
				ob.spans = ob.spans[:0]
				ob.drops = 0
				ts.free = append(ts.free, ob)
			}
			delete(ts.traces, old)
			ts.evicted++
		}
		if n := len(ts.free); n > 0 {
			b = ts.free[n-1]
			ts.free = ts.free[:n-1]
		} else {
			b = &traceBucket{}
		}
		ts.traces[rec.TraceID] = b
		ts.order = append(ts.order, rec.TraceID)
	}
	if len(b.spans) >= ts.maxSpans {
		b.drops++
		ts.dropped++
		return
	}
	b.spans = append(b.spans, *rec)
}

// TraceSummary is one retained trace as listed by /traces.
type TraceSummary struct {
	TraceID uint64 `json:"trace_id"`
	Spans   int    `json:"spans"`
	// Dropped counts spans lost to the per-trace cap.
	Dropped int `json:"dropped_spans,omitempty"`
	// StartNS/EndNS bound the retained spans' wall time (this node's
	// clock, unaligned).
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Root is the site of the trace's hop-0 caller span when this node
	// retains it (empty on non-root nodes).
	Root string `json:"root,omitempty"`
}

// Traces summarizes every retained trace, most recent first. Nil-safe.
func (t *Tracer) Traces() []TraceSummary {
	if t == nil {
		return nil
	}
	ts := t.store
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		id := ts.order[i]
		b := ts.traces[id]
		if b == nil {
			continue
		}
		sum := TraceSummary{TraceID: id, Spans: len(b.spans), Dropped: b.drops}
		for j := range b.spans {
			s := &b.spans[j]
			if sum.StartNS == 0 || s.Start < sum.StartNS {
				sum.StartNS = s.Start
			}
			if s.End > sum.EndNS {
				sum.EndNS = s.End
			}
			if s.Hop == 0 && s.Kind == KindCaller && sum.Root == "" {
				sum.Root = s.Site
			}
		}
		out = append(out, sum)
	}
	return out
}

// TraceSpans returns a private copy of one trace's retained spans in
// close order. Nil when the trace is unknown (or the tracer is nil).
func (t *Tracer) TraceSpans(id uint64) []SpanRecord {
	if t == nil {
		return nil
	}
	ts := t.store
	ts.mu.Lock()
	defer ts.mu.Unlock()
	b := ts.traces[id]
	if b == nil {
		return nil
	}
	return append([]SpanRecord(nil), b.spans...)
}

// TraceStoreStats reports the store's lifetime counters for the obs
// gauges: retained traces, evicted traces, and spans dropped by the
// per-trace cap.
func (t *Tracer) TraceStoreStats() (retained int, evicted, dropped int64) {
	if t == nil {
		return 0, 0, 0
	}
	ts := t.store
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.order), ts.evicted, ts.dropped
}

// sortSpans orders spans by start time, then span ID, for
// deterministic endpoint output.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}
