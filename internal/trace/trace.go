// Package trace is the RMI runtime's flight-recorder tracing layer:
// pooled per-call spans keyed by the existing (from, seq) call id,
// covering every lifecycle phase of a remote invocation, a bounded
// ring buffer retaining the most recent spans (the flight recorder),
// per-(site, phase) latency histograms, and a Chrome trace-event
// exporter (chrome.go) whose output loads directly into Perfetto.
//
// The layer is zero-overhead when off: a cluster without a Tracer pays
// one nil check per call and allocates nothing extra. With a Tracer
// attached, spans are recycled through a sync.Pool and phase recording
// is plain stores into the span, so steady-state tracing allocates
// nothing either; only span close touches shared state (lock-free
// histogram adds plus one short ring-buffer critical section).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cormi/internal/metrics"
)

// Phase enumerates the lifecycle phases of one remote invocation. The
// caller records Serialize, Send, WaitReply, ReplyTransit and
// ReplyDeserialize; the callee records PlanLookup, Transit, Dispatch,
// Deserialize, Execute and ReplySerialize. Transit phases are wall
// time derived from the transport's packet timestamps; the virtual
// (cost-model) transit rides the span's VirtualTransitNS field.
type Phase uint8

const (
	// PhasePlanLookup is the callee's call-site/object/method
	// resolution before unmarshaling.
	PhasePlanLookup Phase = iota
	// PhaseSerialize is the caller-side argument marshal (plus frame
	// seal).
	PhaseSerialize
	// PhaseSend is the transport send call on the caller.
	PhaseSend
	// PhaseTransit is the wall-clock call transit, caller send to
	// callee receive (includes transport queueing).
	PhaseTransit
	// PhaseDispatch is the callee-side gap between the receive loop
	// launching the method goroutine and the method starting (the Go
	// scheduler's dispatch queue).
	PhaseDispatch
	// PhaseDeserialize is the callee-side argument unmarshal,
	// including the §3.3 reuse-cache overwrite path.
	PhaseDeserialize
	// PhaseExecute is the user method body.
	PhaseExecute
	// PhaseReplySerialize is the callee-side reply marshal.
	PhaseReplySerialize
	// PhaseReplyTransit is the wall-clock reply transit, callee send
	// to caller receive.
	PhaseReplyTransit
	// PhaseWaitReply is the caller's wait between (first) send and
	// reply receipt — the full round trip as the caller experiences it,
	// including every retransmit and backoff.
	PhaseWaitReply
	// PhaseReplyDeserialize is the caller-side reply unmarshal.
	PhaseReplyDeserialize
	// PhaseFutureWait is the window an asynchronous call was in flight
	// before its caller resolved it: InvokeAsync returning to Wait (or
	// Done) completing — the overlap the async API bought.
	PhaseFutureWait
	// PhasePromiseWait is the callee-side park of a pipelined call
	// waiting for the promise-table entries its arguments reference.
	PhasePromiseWait

	// NumPhases is the phase count; valid phases are < NumPhases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"plan_lookup", "serialize", "send", "transit", "dispatch",
	"deserialize", "execute", "reply_serialize", "reply_transit",
	"wait_reply", "reply_deserialize", "future_wait", "promise_wait",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Kind distinguishes the two halves of a traced call.
type Kind uint8

const (
	// KindCaller marks the invoking side's span.
	KindCaller Kind = iota
	// KindCallee marks the serving side's span.
	KindCallee
)

func (k Kind) String() string {
	if k == KindCaller {
		return "caller"
	}
	return "callee"
}

// Now returns the wall clock used by all spans and packet timestamps:
// nanoseconds since the Unix epoch.
func Now() int64 { return time.Now().UnixNano() }

// SpanRecord is the immutable value copy of a closed span that the
// flight recorder retains and the exporters read. Both halves of one
// call share (From, Seq) — the RMI runtime's call id.
type SpanRecord struct {
	Site   string
	Method string
	From   int // invoking node
	To     int // serving node
	Seq    int64
	Kind   Kind
	Start  int64 // wall ns (trace.Now)
	End    int64
	Err    string
	// Retries is the number of retransmissions this call needed
	// (caller span only).
	Retries int
	// VirtualTransitNS is the cost-model (virtual time) transit of the
	// call message (callee span only).
	VirtualTransitNS int64
	// PhaseStart/PhaseDur hold each phase's wall start and duration;
	// a zero duration means the phase was not recorded by this half.
	PhaseStart [NumPhases]int64
	PhaseDur   [NumPhases]int64
}

// Span is one in-flight traced call half. Spans are pooled: after End
// the span must not be touched. All methods are nil-receiver safe so
// instrumentation sites need a single `tracer != nil` gate, not one
// per phase.
type Span struct {
	SpanRecord
	t *Tracer
}

// BeginPhase stamps the phase's start time.
func (s *Span) BeginPhase(p Phase) {
	if s == nil {
		return
	}
	s.PhaseStart[p] = Now()
}

// EndPhase stamps the phase's duration from its BeginPhase.
func (s *Span) EndPhase(p Phase) {
	if s == nil {
		return
	}
	s.PhaseDur[p] = Now() - s.PhaseStart[p]
}

// SetPhase records a phase from an externally measured (start,
// duration) pair — used for transit phases derived from packet
// timestamps.
func (s *Span) SetPhase(p Phase, start, dur int64) {
	if s == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s.PhaseStart[p] = start
	s.PhaseDur[p] = dur
}

// AddRetry counts one retransmission.
func (s *Span) AddRetry() {
	if s == nil {
		return
	}
	s.Retries++
}

// SetVirtualTransit records the cost-model transit time.
func (s *Span) SetVirtualTransit(ns int64) {
	if s == nil {
		return
	}
	s.VirtualTransitNS = ns
}

// Fail marks the span failed. The failure classes the flight recorder
// auto-dumps on (timeout, partition, panic) additionally call
// Tracer.DumpFailure.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	s.Err = msg
}

// End closes the span: phase durations feed the per-(site, phase)
// histograms, the record enters the flight-recorder ring, and the span
// returns to the pool. The caller must not touch s afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.SpanRecord.End = Now()
	s.t.close(s)
}

// Config configures a Tracer.
type Config struct {
	// RingSize bounds the flight recorder (default 2048 spans).
	RingSize int
	// Registry receives the per-(site, phase) latency histograms; a
	// private registry is created when nil. Sharing one registry lets
	// /metrics expose tracer histograms next to other instruments.
	Registry *metrics.Registry
	// FailureDump, when non-nil, receives a Chrome-trace JSON dump of
	// the flight recorder each time DumpFailure fires (timeouts,
	// partitions, panics), so a chaos failure always comes with its
	// recent history. Writes are serialized by the tracer.
	FailureDump io.Writer
	// MaxDumps bounds the auto-dumps per tracer (default 4) so a
	// failure storm cannot flood the sink.
	MaxDumps int
}

// Tracer owns the span pool, the per-site histograms and the flight
// recorder. A nil *Tracer is a valid "tracing off" value: StartCaller
// and StartCallee return nil spans whose methods are no-ops.
type Tracer struct {
	cfg Config
	reg *metrics.Registry
	fam *metrics.Family

	pool sync.Pool
	// sites caches site → per-phase histogram arrays so span close
	// does one lock-free map read, not NumPhases label renderings.
	sites sync.Map // string → *[NumPhases]*metrics.Histogram

	ringMu sync.Mutex
	ring   []SpanRecord
	ringN  uint64 // total records ever pushed

	spansStarted atomic.Int64
	failures     atomic.Int64
	dumpMu       sync.Mutex
	dumps        int
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 2048
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 4
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t := &Tracer{
		cfg:  cfg,
		reg:  reg,
		fam:  reg.Family("cormi_phase_latency_ns", "per call-site, per-phase RMI latency in nanoseconds"),
		ring: make([]SpanRecord, cfg.RingSize),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// Registry returns the metrics registry the tracer records into.
func (t *Tracer) Registry() *metrics.Registry { return t.reg }

// SpansStarted returns the number of spans opened so far.
func (t *Tracer) SpansStarted() int64 { return t.spansStarted.Load() }

// Failures returns the number of failed spans closed so far.
func (t *Tracer) Failures() int64 { return t.failures.Load() }

func (t *Tracer) start(site, method string, from, to int, seq int64, kind Kind, startWall int64) *Span {
	if t == nil {
		return nil
	}
	t.spansStarted.Add(1)
	s := t.pool.Get().(*Span)
	s.SpanRecord = SpanRecord{
		Site: site, Method: method, From: from, To: to, Seq: seq,
		Kind: kind, Start: startWall,
	}
	s.t = t
	return s
}

// StartCaller opens the invoking side's span. Returns nil (a no-op
// span) on a nil tracer.
func (t *Tracer) StartCaller(site, method string, from, to int, seq int64) *Span {
	return t.start(site, method, from, to, seq, KindCaller, Now())
}

// StartCallee opens the serving side's span with an explicit start
// time (the packet's receive timestamp, so transit and plan lookup
// measured before the span existed still fit inside it).
func (t *Tracer) StartCallee(site, method string, from, to int, seq, startWall int64) *Span {
	if startWall == 0 {
		startWall = Now()
	}
	return t.start(site, method, from, to, seq, KindCallee, startWall)
}

// hists returns the per-phase histogram array for a site, creating and
// caching it on first use.
func (t *Tracer) hists(site string) *[NumPhases]*metrics.Histogram {
	if v, ok := t.sites.Load(site); ok {
		return v.(*[NumPhases]*metrics.Histogram)
	}
	var arr [NumPhases]*metrics.Histogram
	for p := Phase(0); p < NumPhases; p++ {
		arr[p] = t.fam.Series(fmt.Sprintf("site=%q,phase=%q", site, p))
	}
	v, _ := t.sites.LoadOrStore(site, &arr)
	return v.(*[NumPhases]*metrics.Histogram)
}

func (t *Tracer) close(s *Span) {
	hs := t.hists(s.Site)
	for p := range s.PhaseDur {
		if d := s.PhaseDur[p]; d > 0 {
			hs[p].Observe(d)
		}
	}
	if s.Err != "" {
		t.failures.Add(1)
	}
	t.ringMu.Lock()
	t.ring[t.ringN%uint64(len(t.ring))] = s.SpanRecord
	t.ringN++
	t.ringMu.Unlock()

	*s = Span{} // clear strings and stale phases before pooling
	t.pool.Put(s)
}

// Recent returns the flight recorder's contents, oldest first. The
// slice is a private copy.
func (t *Tracer) Recent() []SpanRecord {
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	n := t.ringN
	size := uint64(len(t.ring))
	count := n
	if count > size {
		count = size
	}
	out := make([]SpanRecord, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}

// DumpFailure writes a Chrome-trace dump of the flight recorder to the
// configured FailureDump sink, tagged with the failure reason. It is
// called by the RMI runtime on ErrTimeout, ErrPartitioned and user
// method panics; at most MaxDumps dumps are written per tracer.
func (t *Tracer) DumpFailure(reason string) {
	if t == nil || t.cfg.FailureDump == nil {
		return
	}
	t.dumpMu.Lock()
	defer t.dumpMu.Unlock()
	if t.dumps >= t.cfg.MaxDumps {
		return
	}
	t.dumps++
	_ = WriteChrome(t.cfg.FailureDump, t.Recent(), reason)
}

// PhaseStat is one (site, phase) latency summary row.
type PhaseStat struct {
	Site   string  `json:"site"`
	Phase  string  `json:"phase"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
}

// PhaseStats summarizes every populated (site, phase) histogram,
// sorted by site then phase order.
func (t *Tracer) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	var out []PhaseStat
	t.sites.Range(func(k, v any) bool {
		site := k.(string)
		arr := v.(*[NumPhases]*metrics.Histogram)
		for p := Phase(0); p < NumPhases; p++ {
			snap := arr[p].Snapshot()
			if snap.Total == 0 {
				continue
			}
			out = append(out, PhaseStat{
				Site:   site,
				Phase:  p.String(),
				Count:  snap.Total,
				MeanNS: snap.Mean(),
				P50NS:  snap.Quantile(0.50),
				P95NS:  snap.Quantile(0.95),
				P99NS:  snap.Quantile(0.99),
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return phaseIndex(out[i].Phase) < phaseIndex(out[j].Phase)
	})
	return out
}

func phaseIndex(name string) int {
	for i, n := range phaseNames {
		if n == name {
			return i
		}
	}
	return len(phaseNames)
}
