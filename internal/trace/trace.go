// Package trace is the RMI runtime's flight-recorder tracing layer:
// pooled per-call spans keyed by the existing (from, seq) call id,
// covering every lifecycle phase of a remote invocation, a bounded
// ring buffer retaining the most recent spans (the flight recorder),
// per-(site, phase) latency histograms, and a Chrome trace-event
// exporter (chrome.go) whose output loads directly into Perfetto.
//
// The layer is zero-overhead when off: a cluster without a Tracer pays
// one nil check per call and allocates nothing extra. With a Tracer
// attached, spans are recycled through a sync.Pool and phase recording
// is plain stores into the span, so steady-state tracing allocates
// nothing either; only span close touches shared state (lock-free
// histogram adds plus one short ring-buffer critical section).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cormi/internal/metrics"
)

// Phase enumerates the lifecycle phases of one remote invocation. The
// caller records Serialize, Send, WaitReply, ReplyTransit and
// ReplyDeserialize; the callee records PlanLookup, Transit, Dispatch,
// Deserialize, Execute and ReplySerialize. Transit phases are wall
// time derived from the transport's packet timestamps; the virtual
// (cost-model) transit rides the span's VirtualTransitNS field.
type Phase uint8

const (
	// PhasePlanLookup is the callee's call-site/object/method
	// resolution before unmarshaling.
	PhasePlanLookup Phase = iota
	// PhaseSerialize is the caller-side argument marshal (plus frame
	// seal).
	PhaseSerialize
	// PhaseSend is the transport send call on the caller.
	PhaseSend
	// PhaseTransit is the wall-clock call transit, caller send to
	// callee receive (includes transport queueing).
	PhaseTransit
	// PhaseDispatch is the callee-side gap between the receive loop
	// launching the method goroutine and the method starting (the Go
	// scheduler's dispatch queue).
	PhaseDispatch
	// PhaseDeserialize is the callee-side argument unmarshal,
	// including the §3.3 reuse-cache overwrite path.
	PhaseDeserialize
	// PhaseExecute is the user method body.
	PhaseExecute
	// PhaseReplySerialize is the callee-side reply marshal.
	PhaseReplySerialize
	// PhaseReplyTransit is the wall-clock reply transit, callee send
	// to caller receive.
	PhaseReplyTransit
	// PhaseWaitReply is the caller's wait between (first) send and
	// reply receipt — the full round trip as the caller experiences it,
	// including every retransmit and backoff.
	PhaseWaitReply
	// PhaseReplyDeserialize is the caller-side reply unmarshal.
	PhaseReplyDeserialize
	// PhaseFutureWait is the window an asynchronous call was in flight
	// before its caller resolved it: InvokeAsync returning to Wait (or
	// Done) completing — the overlap the async API bought.
	PhaseFutureWait
	// PhasePromiseWait is the callee-side park of a pipelined call
	// waiting for the promise-table entries its arguments reference.
	PhasePromiseWait
	// PhaseBatchWait is the window the oldest frame of one batched
	// container waited between enqueue and physical flush — recorded on
	// a per-link pseudo-site span (RecordFlush), since the wait belongs
	// to the link's batcher, not to any one call site.
	PhaseBatchWait

	// NumPhases is the phase count; valid phases are < NumPhases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"plan_lookup", "serialize", "send", "transit", "dispatch",
	"deserialize", "execute", "reply_serialize", "reply_transit",
	"wait_reply", "reply_deserialize", "future_wait", "promise_wait",
	"batch_wait",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Kind distinguishes the two halves of a traced call.
type Kind uint8

const (
	// KindCaller marks the invoking side's span.
	KindCaller Kind = iota
	// KindCallee marks the serving side's span.
	KindCallee
)

func (k Kind) String() string {
	if k == KindCaller {
		return "caller"
	}
	return "callee"
}

// Now returns the wall clock used by all spans and packet timestamps:
// nanoseconds since the Unix epoch.
func Now() int64 { return time.Now().UnixNano() }

// SpanRecord is the immutable value copy of a closed span that the
// flight recorder retains and the exporters read. Both halves of one
// call share (From, Seq) — the RMI runtime's call id. The JSON tags
// are the /traces/<id> wire shape, which peers decode verbatim during
// cross-node tree reconstruction.
type SpanRecord struct {
	Site   string `json:"site"`
	Method string `json:"method"`
	From   int    `json:"from"` // invoking node
	To     int    `json:"to"`   // serving node
	Seq    int64  `json:"seq"`
	Kind   Kind   `json:"kind"`
	Start  int64  `json:"start"` // wall ns (trace.Now)
	End    int64  `json:"end"`
	Err    string `json:"err,omitempty"`
	// Retries is the number of retransmissions this call needed
	// (caller span only).
	Retries int `json:"retries,omitempty"`
	// VirtualTransitNS is the cost-model (virtual time) transit of the
	// call message (callee span only).
	VirtualTransitNS int64 `json:"virtual_transit_ns,omitempty"`
	// OneWay marks fire-and-forget calls: the caller half ends at wire
	// handoff and the callee half never serializes a reply, so a short
	// span is expected, not truncated.
	OneWay bool `json:"one_way,omitempty"`
	// Batch is the sub-frame count of a batch-flush span (RecordFlush);
	// zero on ordinary call spans. Flush spans carry only PhaseBatchWait
	// and are excluded from per-call attribution totals.
	Batch int `json:"batch,omitempty"`
	// TraceID names the cross-node trace this span belongs to; zero on
	// unsampled calls (the common case). SpanID is this span's own
	// identity within the trace, ParentID the span that caused it (zero
	// for the root), and Hop the wire-hop distance from the root node.
	// See DESIGN.md §15.
	TraceID  uint64 `json:"trace_id,omitempty"`
	SpanID   uint64 `json:"span_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Hop      uint8  `json:"hop,omitempty"`
	// PhaseStart/PhaseDur hold each phase's wall start and duration;
	// a zero duration means the phase was not recorded by this half.
	PhaseStart [NumPhases]int64 `json:"phase_start"`
	PhaseDur   [NumPhases]int64 `json:"phase_dur"`
}

// Span is one in-flight traced call half. Spans are pooled: after End
// the span must not be touched. All methods are nil-receiver safe so
// instrumentation sites need a single `tracer != nil` gate, not one
// per phase.
type Span struct {
	SpanRecord
	t *Tracer
}

// BeginPhase stamps the phase's start time.
func (s *Span) BeginPhase(p Phase) {
	if s == nil {
		return
	}
	s.PhaseStart[p] = Now()
}

// EndPhase stamps the phase's duration from its BeginPhase.
func (s *Span) EndPhase(p Phase) {
	if s == nil {
		return
	}
	s.PhaseDur[p] = Now() - s.PhaseStart[p]
}

// SetPhase records a phase from an externally measured (start,
// duration) pair — used for transit phases derived from packet
// timestamps.
func (s *Span) SetPhase(p Phase, start, dur int64) {
	if s == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s.PhaseStart[p] = start
	s.PhaseDur[p] = dur
}

// AddRetry counts one retransmission.
func (s *Span) AddRetry() {
	if s == nil {
		return
	}
	s.Retries++
}

// SetVirtualTransit records the cost-model transit time.
func (s *Span) SetVirtualTransit(ns int64) {
	if s == nil {
		return
	}
	s.VirtualTransitNS = ns
}

// SetOneWay marks the span as half of a fire-and-forget call.
func (s *Span) SetOneWay() {
	if s == nil {
		return
	}
	s.OneWay = true
}

// SetTraceIdentity stamps the span's distributed-tracing identity: the
// trace it belongs to, its own span ID, the parent span that caused it
// and its wire-hop distance from the root. A span with a trace ID is
// retained in the tracer's per-trace store on close.
func (s *Span) SetTraceIdentity(traceID, spanID, parentID uint64, hop uint8) {
	if s == nil {
		return
	}
	s.TraceID, s.SpanID, s.ParentID, s.Hop = traceID, spanID, parentID, hop
}

// Fail marks the span failed. The failure classes the flight recorder
// auto-dumps on (timeout, partition, panic) additionally call
// Tracer.DumpFailure.
func (s *Span) Fail(msg string) {
	if s == nil {
		return
	}
	s.Err = msg
}

// End closes the span: phase durations feed the per-(site, phase)
// histograms, the record enters the flight-recorder ring, and the span
// returns to the pool. The caller must not touch s afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.SpanRecord.End = Now()
	s.t.close(s)
}

// Config configures a Tracer.
type Config struct {
	// RingSize bounds the flight recorder (default 2048 spans).
	RingSize int
	// Registry receives the per-(site, phase) latency histograms; a
	// private registry is created when nil. Sharing one registry lets
	// /metrics expose tracer histograms next to other instruments.
	Registry *metrics.Registry
	// FailureDump, when non-nil, receives a Chrome-trace JSON dump of
	// the flight recorder each time DumpFailure fires (timeouts,
	// partitions, panics), so a chaos failure always comes with its
	// recent history. Writes are serialized by the tracer.
	FailureDump io.Writer
	// MaxDumps bounds the auto-dumps per tracer (default 4) so a
	// failure storm cannot flood the sink.
	MaxDumps int
	// ExemplarRing bounds the slow-call exemplar ring (default 64).
	ExemplarRing int
	// ExemplarWarmup is the per-site caller-span count before the
	// adaptive slow-call threshold arms (default 64): exemplar capture
	// needs a latency distribution to estimate p99 against.
	ExemplarWarmup int64
	// ExemplarRefresh re-derives a site's threshold from its total-
	// latency histogram every this many caller spans (default 256), so
	// the p99 estimate tracks workload shifts without per-call quantile
	// math.
	ExemplarRefresh int64
	// ExemplarMinNS floors the slow-call threshold: calls faster than
	// this never capture an exemplar regardless of the site's p99.
	// Zero means no floor. Tests use a huge floor to keep capture armed
	// but never firing.
	ExemplarMinNS int64
	// SampleEvery arms head-based trace sampling: every SampleEvery-th
	// root call (a remote invocation with no inherited trace context)
	// allocates a trace ID that then propagates on the wire through
	// every downstream hop. Zero — the default — disables distributed
	// tracing entirely; per-call spans and attribution still run. The
	// decision is a deterministic counter, not an RNG, so the unsampled
	// hot path pays one atomic add and allocates nothing.
	SampleEvery int64
	// MaxTraces bounds the per-trace span store (default 256 traces,
	// FIFO eviction; evicted buckets are recycled).
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's retained spans (default 512);
	// overflow spans are counted as dropped, not stored.
	MaxSpansPerTrace int
}

// siteState is everything the tracer tracks per call site: the
// per-phase latency histograms, the caller-observed total-latency
// histogram, the always-on blame counters, and the adaptive slow-call
// threshold. Span close touches it with one lock-free map read plus
// plain atomic adds — no allocation, no locks.
type siteState struct {
	hists [NumPhases]*metrics.Histogram
	// total is the caller-observed end-to-end latency (full span wall
	// time of KindCaller spans), the distribution cluster quantiles and
	// the slow-call threshold derive from.
	total *metrics.Histogram
	// wins[p] counts spans whose dominant (longest) leaf phase was p;
	// self[p] accumulates every span's phase-p duration. Wins answer
	// "what usually dominates", self answers "where the nanoseconds
	// went" — the duration-weighted view is the one top-blame uses, so
	// one 10ms execute outvotes a thousand 1µs serializes.
	wins [NumPhases]atomic.Int64
	self [NumPhases]atomic.Int64

	callerSpans atomic.Int64
	// threshold is the armed slow-call cutoff in ns; zero until warmup.
	threshold atomic.Int64
	exemplars atomic.Int64
}

// Tracer owns the span pool, the per-site histograms and the flight
// recorder. A nil *Tracer is a valid "tracing off" value: StartCaller
// and StartCallee return nil spans whose methods are no-ops.
type Tracer struct {
	cfg      Config
	reg      *metrics.Registry
	fam      *metrics.Family
	totalFam *metrics.Family

	pool sync.Pool
	// sites caches site → siteState so span close does one lock-free
	// map read, not NumPhases label renderings.
	sites sync.Map // string → *siteState

	ringMu sync.Mutex
	ring   []SpanRecord
	ringN  uint64 // total records ever pushed

	exMu sync.Mutex
	exs  []Exemplar
	exN  uint64 // total exemplars ever pushed

	spansStarted   atomic.Int64
	failures       atomic.Int64
	exemplarsTotal atomic.Int64
	dumpMu         sync.Mutex
	dumps          int

	// Distributed-tracing state: idBase makes this tracer's trace and
	// span IDs disjoint from other tracers' (each obs node runs its
	// own), sampleTick drives the deterministic head-sampling decision,
	// and store retains the sampled spans per trace ID.
	idBase     uint64
	sampleTick atomic.Int64
	traceSeq   atomic.Uint64
	spanSeq    atomic.Uint64
	store      *traceStore
}

// New creates a tracer.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 2048
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 4
	}
	if cfg.ExemplarRing <= 0 {
		cfg.ExemplarRing = 64
	}
	if cfg.ExemplarWarmup <= 0 {
		cfg.ExemplarWarmup = 64
	}
	if cfg.ExemplarRefresh <= 0 {
		cfg.ExemplarRefresh = 256
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 256
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 512
	}
	t := &Tracer{
		cfg:      cfg,
		reg:      reg,
		fam:      reg.Family("cormi_phase_latency_ns", "per call-site, per-phase RMI latency in nanoseconds"),
		totalFam: reg.Family("cormi_call_latency_ns", "per call-site caller-observed end-to-end RMI latency in nanoseconds"),
		ring:     make([]SpanRecord, cfg.RingSize),
		exs:      make([]Exemplar, cfg.ExemplarRing),
		idBase:   newIDBase(),
		store:    newTraceStore(cfg.MaxTraces, cfg.MaxSpansPerTrace),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// tracerSeq distinguishes tracers created within the same clock tick,
// so their ID bases never coincide even in one process.
var tracerSeq atomic.Uint64

// newIDBase derives a well-mixed per-tracer 64-bit base for trace and
// span IDs. Uniqueness across tracers (and across nodes of a real
// deployment) is probabilistic — the tree assembler tolerates
// collisions — so a mixed timestamp is enough; no RNG dependency.
func newIDBase() uint64 {
	return mix64(uint64(time.Now().UnixNano()) + tracerSeq.Add(1)*0x9E3779B97F4A7C15)
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// SampleTrace makes the head-based sampling decision for one root call
// and returns the new trace ID, or zero when the call is not sampled
// (including whenever sampling is disarmed or the tracer is nil). The
// unsampled path is one atomic add and a branch — no allocation.
func (t *Tracer) SampleTrace() uint64 {
	if t == nil || t.cfg.SampleEvery <= 0 {
		return 0
	}
	if (t.sampleTick.Add(1)-1)%t.cfg.SampleEvery != 0 {
		return 0
	}
	id := mix64(t.idBase ^ t.traceSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// NextSpanID allocates a span ID unique within this tracer and — by
// the mixed per-tracer base — disjoint from other tracers' with
// overwhelming probability. Called only on sampled spans.
func (t *Tracer) NextSpanID() uint64 {
	if t == nil {
		return 0
	}
	id := mix64(t.idBase + t.spanSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// Registry returns the metrics registry the tracer records into.
func (t *Tracer) Registry() *metrics.Registry { return t.reg }

// SpansStarted returns the number of spans opened so far.
func (t *Tracer) SpansStarted() int64 { return t.spansStarted.Load() }

// Failures returns the number of failed spans closed so far.
func (t *Tracer) Failures() int64 { return t.failures.Load() }

func (t *Tracer) start(site, method string, from, to int, seq int64, kind Kind, startWall int64) *Span {
	if t == nil {
		return nil
	}
	t.spansStarted.Add(1)
	s := t.pool.Get().(*Span)
	s.SpanRecord = SpanRecord{
		Site: site, Method: method, From: from, To: to, Seq: seq,
		Kind: kind, Start: startWall,
	}
	s.t = t
	return s
}

// StartCaller opens the invoking side's span. Returns nil (a no-op
// span) on a nil tracer.
func (t *Tracer) StartCaller(site, method string, from, to int, seq int64) *Span {
	return t.start(site, method, from, to, seq, KindCaller, Now())
}

// StartCallee opens the serving side's span with an explicit start
// time (the packet's receive timestamp, so transit and plan lookup
// measured before the span existed still fit inside it).
func (t *Tracer) StartCallee(site, method string, from, to int, seq, startWall int64) *Span {
	if startWall == 0 {
		startWall = Now()
	}
	return t.start(site, method, from, to, seq, KindCallee, startWall)
}

// site returns the state for a call site, creating and caching it on
// first use.
func (t *Tracer) site(name string) *siteState {
	if v, ok := t.sites.Load(name); ok {
		return v.(*siteState)
	}
	st := &siteState{total: t.totalFam.Series(fmt.Sprintf("site=%q", name))}
	for p := Phase(0); p < NumPhases; p++ {
		st.hists[p] = t.fam.Series(fmt.Sprintf("site=%q,phase=%q", name, p))
	}
	v, _ := t.sites.LoadOrStore(name, st)
	return v.(*siteState)
}

// blamable reports whether a phase is a leaf of the call timeline for
// attribution purposes. PhaseWaitReply is the caller's whole round
// trip — a container over transit, dispatch, execute and the reply
// legs — so counting it would blame "waiting" for every call;
// PhaseFutureWait likewise contains the overlapped flight of an async
// call. Both are excluded from dominant-phase classification and
// self-time sums; the leaf phases partition the wait they cover.
func blamable(p Phase) bool {
	return p != PhaseWaitReply && p != PhaseFutureWait
}

func (t *Tracer) close(s *Span) {
	st := t.site(s.Site)
	var domPhase = -1
	var domDur int64
	for p := range s.PhaseDur {
		d := s.PhaseDur[p]
		if d <= 0 {
			continue
		}
		st.hists[p].Observe(d)
		if !blamable(Phase(p)) {
			continue
		}
		st.self[p].Add(d)
		if d > domDur {
			domDur, domPhase = d, p
		}
	}
	if domPhase >= 0 {
		st.wins[domPhase].Add(1)
	}
	if s.Err != "" {
		t.failures.Add(1)
	}

	// Caller spans of ordinary calls carry the end-to-end latency the
	// user saw; feed the total histogram and the adaptive threshold.
	// Flush spans (Batch > 0) are link bookkeeping, not calls.
	slow := false
	var tot int64
	if s.Kind == KindCaller && s.Batch == 0 {
		tot = s.SpanRecord.End - s.SpanRecord.Start
		if tot < 0 {
			tot = 0
		}
		st.total.Observe(tot)
		n := st.callerSpans.Add(1)
		if n == t.cfg.ExemplarWarmup || (n > t.cfg.ExemplarWarmup && n%t.cfg.ExemplarRefresh == 0) {
			thr := int64(st.total.Quantile(0.99))
			if thr < t.cfg.ExemplarMinNS {
				thr = t.cfg.ExemplarMinNS
			}
			if thr > 0 {
				st.threshold.Store(thr)
			}
		}
		if thr := st.threshold.Load(); thr > 0 && tot > thr {
			slow = true
		}
	}

	t.ringMu.Lock()
	t.ring[t.ringN%uint64(len(t.ring))] = s.SpanRecord
	t.ringN++
	t.ringMu.Unlock()

	// Sampled spans are additionally retained per trace ID so the
	// /traces endpoints can reconstruct the cross-node call tree. Only
	// spans carrying a trace ID pay this (head sampling made that
	// decision at the root); buckets are recycled across evictions.
	if s.TraceID != 0 {
		t.store.insert(&s.SpanRecord)
	}

	if slow {
		// Rare by construction (past the site's p99), so the capture
		// path may allocate; the common path above does not.
		t.captureExemplar(st, &s.SpanRecord, tot)
	}

	*s = Span{} // clear strings and stale phases before pooling
	t.pool.Put(s)
}

// RecordFlush records one batch-container flush as a span on the
// link's pseudo-site (e.g. "link.0->1"): its single PhaseBatchWait
// phase is the wall time the container's oldest frame waited for the
// physical flush, and Batch carries the coalesced sub-frame count.
// The span flows through the same close path as call spans, so batch
// wait shows up in histograms, blame counters, the flight recorder and
// the Chrome dump like any other phase.
func (t *Tracer) RecordFlush(site string, from, to, frames int, oldestWall int64) {
	if t == nil || frames <= 0 {
		return
	}
	now := Now()
	if oldestWall <= 0 || oldestWall > now {
		oldestWall = now
	}
	t.spansStarted.Add(1)
	s := t.pool.Get().(*Span)
	s.SpanRecord = SpanRecord{
		Site: site, Method: "flush", From: from, To: to,
		Kind: KindCaller, Start: oldestWall, Batch: frames,
	}
	s.t = t
	s.SetPhase(PhaseBatchWait, oldestWall, now-oldestWall)
	s.End()
}

// Recent returns the flight recorder's contents, oldest first. The
// slice is a private copy.
func (t *Tracer) Recent() []SpanRecord {
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	n := t.ringN
	size := uint64(len(t.ring))
	count := n
	if count > size {
		count = size
	}
	out := make([]SpanRecord, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.ring[i%size])
	}
	return out
}

// DumpFailure writes a Chrome-trace dump of the flight recorder to the
// configured FailureDump sink, tagged with the failure reason. It is
// called by the RMI runtime on ErrTimeout, ErrPartitioned and user
// method panics; at most MaxDumps dumps are written per tracer.
func (t *Tracer) DumpFailure(reason string) {
	if t == nil || t.cfg.FailureDump == nil {
		return
	}
	t.dumpMu.Lock()
	defer t.dumpMu.Unlock()
	if t.dumps >= t.cfg.MaxDumps {
		return
	}
	t.dumps++
	_ = WriteChrome(t.cfg.FailureDump, t.Recent(), reason)
}

// PhaseStat is one (site, phase) latency summary row.
type PhaseStat struct {
	Site   string  `json:"site"`
	Phase  string  `json:"phase"`
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  float64 `json:"p50_ns"`
	P95NS  float64 `json:"p95_ns"`
	P99NS  float64 `json:"p99_ns"`
}

// PhaseStats summarizes every populated (site, phase) histogram,
// sorted by site then phase order.
func (t *Tracer) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	var out []PhaseStat
	t.sites.Range(func(k, v any) bool {
		site := k.(string)
		st := v.(*siteState)
		for p := Phase(0); p < NumPhases; p++ {
			snap := st.hists[p].Snapshot()
			if snap.Total == 0 {
				continue
			}
			out = append(out, PhaseStat{
				Site:   site,
				Phase:  p.String(),
				Count:  snap.Total,
				MeanNS: snap.Mean(),
				P50NS:  snap.Quantile(0.50),
				P95NS:  snap.Quantile(0.95),
				P99NS:  snap.Quantile(0.99),
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return phaseIndex(out[i].Phase) < phaseIndex(out[j].Phase)
	})
	return out
}

func phaseIndex(name string) int {
	for i, n := range phaseNames {
		if n == name {
			return i
		}
	}
	return len(phaseNames)
}
