package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartCaller("s", "m", 0, 1, 7)
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every span method must tolerate the nil receiver.
	sp.BeginPhase(PhaseSerialize)
	sp.EndPhase(PhaseSerialize)
	sp.SetPhase(PhaseTransit, 1, 2)
	sp.AddRetry()
	sp.SetVirtualTransit(5)
	sp.Fail("x")
	sp.End()
	tr.DumpFailure("timeout")
	if got := tr.PhaseStats(); got != nil {
		t.Fatalf("nil tracer PhaseStats = %v", got)
	}
}

func TestSpanLifecycleAndHistograms(t *testing.T) {
	tr := New(Config{RingSize: 8})
	for i := 0; i < 5; i++ {
		sp := tr.StartCaller("Foo.send.1", "send", 0, 1, int64(i))
		sp.BeginPhase(PhaseSerialize)
		sp.EndPhase(PhaseSerialize)
		sp.SetPhase(PhaseWaitReply, Now(), 1000)
		sp.End()
	}
	if got := tr.SpansStarted(); got != 5 {
		t.Fatalf("SpansStarted = %d, want 5", got)
	}
	stats := tr.PhaseStats()
	var wait *PhaseStat
	for i := range stats {
		if stats[i].Phase == "wait_reply" {
			wait = &stats[i]
		}
	}
	if wait == nil || wait.Count != 5 {
		t.Fatalf("wait_reply stat missing or wrong count: %+v", stats)
	}
	if wait.P50NS < 512 || wait.P50NS > 2048 {
		t.Errorf("p50 of constant 1000ns = %g, want within its log2 bucket", wait.P50NS)
	}
	if wait.P99NS < wait.P50NS {
		t.Errorf("p99 %g < p50 %g", wait.P99NS, wait.P50NS)
	}
}

func TestFlightRecorderRingBounds(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		sp := tr.StartCallee("S", "m", 0, 1, int64(i), 0)
		sp.End()
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(rec))
	}
	// Oldest-first: the ring retains the last 4 of seq 0..9.
	for i, r := range rec {
		if want := int64(6 + i); r.Seq != want {
			t.Errorf("rec[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestFailureDump(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{RingSize: 16, FailureDump: &buf, MaxDumps: 2})
	sp := tr.StartCaller("Work.go.1", "go", 0, 3, 42)
	sp.AddRetry()
	sp.Fail("rmi: call timed out")
	sp.End()
	tr.DumpFailure("timeout")

	if tr.Failures() != 1 {
		t.Fatalf("Failures = %d, want 1", tr.Failures())
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed.OtherData["reason"] != "timeout" {
		t.Errorf("dump reason = %v, want timeout", parsed.OtherData["reason"])
	}
	out := buf.String()
	for _, want := range []string{"Work.go.1", `"seq":42`, "call timed out"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	// MaxDumps bounds the flood: the third dump is suppressed.
	buf.Reset()
	tr.DumpFailure("timeout")
	second := buf.Len()
	buf.Reset()
	tr.DumpFailure("timeout")
	if second == 0 || buf.Len() != 0 {
		t.Errorf("dump throttling wrong: second=%d third=%d", second, buf.Len())
	}
}

func TestWriteChromeParses(t *testing.T) {
	tr := New(Config{RingSize: 8})
	sp := tr.StartCallee("A.b.1", "b", 2, 5, 9, Now())
	sp.BeginPhase(PhaseExecute)
	sp.EndPhase(PhaseExecute)
	sp.SetVirtualTransit(777)
	sp.End()

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Recent(), ""); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}
	var haveSpan, haveExec bool
	for _, e := range parsed.TraceEvents {
		if e.Name == "A.b.1" && e.Ph == "X" && e.PID == 5 {
			haveSpan = true
		}
		if e.Name == "execute" && e.Ph == "X" {
			haveExec = true
		}
	}
	if !haveSpan || !haveExec {
		t.Fatalf("span=%v exec=%v, want both; events: %+v", haveSpan, haveExec, parsed.TraceEvents)
	}
}

func TestWriteChromeOneWayAndBatchSpans(t *testing.T) {
	tr := New(Config{RingSize: 8})
	sp := tr.StartCaller("W.fire.1", "fire", 0, 2, 11)
	sp.SetOneWay()
	sp.BeginPhase(PhaseSerialize)
	sp.EndPhase(PhaseSerialize)
	sp.End()
	tr.RecordFlush("link.0->2", 0, 2, 7, Now()-1000)

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Recent(), ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"one_way":true`, `"batched_frames":7`, `"cat":"batch"`,
		`link.0-\u003e2`, "batch_wait",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome dump missing %q:\n%s", want, out)
		}
	}
}

// TestSpanPoolRecycles pins the "enabled tracing recycles spans"
// guarantee: steady-state span open/close allocates nothing beyond the
// ring copy.
func TestSpanPoolRecycles(t *testing.T) {
	tr := New(Config{RingSize: 32})
	for i := 0; i < 100; i++ { // reach pool steady state
		tr.StartCaller("S", "m", 0, 1, int64(i)).End()
	}
	avg := testing.AllocsPerRun(200, func() {
		sp := tr.StartCaller("S", "m", 0, 1, 1)
		sp.BeginPhase(PhaseSerialize)
		sp.EndPhase(PhaseSerialize)
		sp.End()
	})
	if avg > 0.5 {
		t.Fatalf("traced span lifecycle allocates %.2f/op, want 0", avg)
	}
}
