package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Cross-node trace reconstruction: the spans of one trace ID, fetched
// from every node's /traces/<id> endpoint, are assembled into a call
// tree, the nodes' wall clocks are aligned from the request/reply
// transit stamp pairs the spans already carry, and the end-to-end
// critical path is computed through the aligned tree. See DESIGN.md
// §15 for the math and the crediting rules.

// NodeSpans is one node's contribution to a trace: the spans its
// tracer retained, tagged with the node's observability name.
type NodeSpans struct {
	Node  string       `json:"node"`
	Spans []SpanRecord `json:"spans"`
}

// TreeSpan is one span of a reconstructed cross-node tree, with its
// wall times rebased onto the root node's clock.
type TreeSpan struct {
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id,omitempty"`
	Node     string `json:"node"`
	Site     string `json:"site"`
	Method   string `json:"method"`
	Kind     string `json:"kind"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	Seq      int64  `json:"seq"`
	Hop      uint8  `json:"hop"`
	StartNS  int64  `json:"start_ns"` // aligned to the root node's clock
	DurNS    int64  `json:"dur_ns"`
	// OffsetNS is the clock correction subtracted from this span's raw
	// timestamps (the recording node's estimated skew vs the root).
	OffsetNS int64  `json:"offset_ns,omitempty"`
	Err      string `json:"err,omitempty"`
	Retries  int    `json:"retries,omitempty"`
	OneWay   bool   `json:"one_way,omitempty"`
	// Orphan marks a span whose parent is missing (unsampled parent,
	// unreachable node, or an evicted bucket); it is grafted in as an
	// extra root so its subtree still renders.
	Orphan bool `json:"orphan,omitempty"`
	// Critical marks membership in the end-to-end critical path.
	Critical bool `json:"critical,omitempty"`
	// Children indexes this span's children in Tree.Spans.
	Children []int `json:"children,omitempty"`
}

// Tree is one reconstructed cross-node trace.
type Tree struct {
	TraceID uint64 `json:"trace_id"`
	// Spans is sorted by aligned start time then span ID; Roots indexes
	// the parentless spans (one entry = a fully connected trace).
	Spans []TreeSpan `json:"spans"`
	Roots []int      `json:"roots"`
	// Orphans counts spans whose parent could not be found; Duplicates
	// counts spans discarded as redeliveries (same span ID, or the same
	// call half re-executed after a retry).
	Orphans    int `json:"orphans"`
	Duplicates int `json:"duplicates"`
	MaxHop     int `json:"max_hop"`
	// EndToEndNS is the aligned wall time from the primary root's start
	// to the latest span end in the tree.
	EndToEndNS int64 `json:"end_to_end_ns"`
	// CriticalPathNS sums the credited segments along CriticalPath:
	// walking from the latest-ending span back to its root, each span
	// is credited only the interval not covered by its on-path child —
	// so a parent blocked on an overlapped (pipelined/async) child is
	// not double-charged for the child's time.
	CriticalPathNS int64    `json:"critical_path_ns"`
	CriticalPath   []uint64 `json:"critical_path,omitempty"` // root → leaf
}

// spanKey identifies one call half for retry deduplication: sequence
// numbers are unique per invoking node, so a second span with the same
// key is a re-execution (dedup-cache eviction under retries), not a
// distinct call.
type spanKey struct {
	kind Kind
	from int
	seq  int64
}

// BuildTree assembles the spans of traceID from every node's
// contribution into an aligned call tree. It tolerates every partial
// view the satellites name: missing parents become orphan roots,
// duplicate spans are discarded, nodes without stamp pairs fall back
// to zero offset.
func BuildTree(traceID uint64, nodes []NodeSpans) *Tree {
	var raw []alignSpan
	tr := &Tree{TraceID: traceID}
	seenID := make(map[uint64]bool)
	seenKey := make(map[spanKey]bool)
	for _, ns := range nodes {
		for i := range ns.Spans {
			s := &ns.Spans[i]
			if s.TraceID != traceID || s.SpanID == 0 {
				continue
			}
			if seenID[s.SpanID] {
				tr.Duplicates++
				continue
			}
			k := spanKey{kind: s.Kind, from: s.From, seq: s.Seq}
			if seenKey[k] {
				tr.Duplicates++
				continue
			}
			seenID[s.SpanID] = true
			seenKey[k] = true
			raw = append(raw, alignSpan{rec: s, node: ns.Node})
		}
	}
	if len(raw) == 0 {
		return tr
	}

	// Pick the primary root: the hop-0 caller span (earliest if several
	// — multiple root calls can share a trace), else the earliest span.
	rootIdx := 0
	better := func(a, b alignSpan) bool {
		aRoot := a.rec.Hop == 0 && a.rec.Kind == KindCaller
		bRoot := b.rec.Hop == 0 && b.rec.Kind == KindCaller
		if aRoot != bRoot {
			return aRoot
		}
		return a.rec.Start < b.rec.Start
	}
	for i := range raw {
		if better(raw[i], raw[rootIdx]) {
			rootIdx = i
		}
	}

	offsets := alignClocks(raw[rootIdx].node, raw)

	// Materialize aligned tree spans.
	byID := make(map[uint64]int, len(raw))
	tr.Spans = make([]TreeSpan, 0, len(raw))
	for i := range raw {
		s := raw[i].rec
		off := offsets[raw[i].node]
		tr.Spans = append(tr.Spans, TreeSpan{
			SpanID: s.SpanID, ParentID: s.ParentID, Node: raw[i].node,
			Site: s.Site, Method: s.Method, Kind: s.Kind.String(),
			From: s.From, To: s.To, Seq: s.Seq, Hop: s.Hop,
			StartNS: s.Start - off, DurNS: s.End - s.Start, OffsetNS: off,
			Err: s.Err, Retries: s.Retries, OneWay: s.OneWay,
		})
	}
	sort.Slice(tr.Spans, func(i, j int) bool {
		if tr.Spans[i].StartNS != tr.Spans[j].StartNS {
			return tr.Spans[i].StartNS < tr.Spans[j].StartNS
		}
		return tr.Spans[i].SpanID < tr.Spans[j].SpanID
	})
	for i := range tr.Spans {
		byID[tr.Spans[i].SpanID] = i
	}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		if int(s.Hop) > tr.MaxHop {
			tr.MaxHop = int(s.Hop)
		}
		if s.ParentID == 0 {
			tr.Roots = append(tr.Roots, i)
			continue
		}
		if pi, ok := byID[s.ParentID]; ok {
			tr.Spans[pi].Children = append(tr.Spans[pi].Children, i)
		} else {
			s.Orphan = true
			tr.Orphans++
			tr.Roots = append(tr.Roots, i)
		}
	}

	// End-to-end window and critical path. The primary root is the
	// first non-orphan root (the sort put the earliest start first);
	// fall back to the first root.
	if len(tr.Roots) == 0 {
		// Degenerate: every span claims a present parent, which a cycle
		// of forged parent IDs could produce. No tree to walk.
		return tr
	}
	primary := tr.Roots[0]
	for _, r := range tr.Roots {
		if !tr.Spans[r].Orphan {
			primary = r
			break
		}
	}
	rootStart := tr.Spans[primary].StartNS
	leaf, latest := primary, int64(0)
	for i := range tr.Spans {
		if end := tr.Spans[i].StartNS + tr.Spans[i].DurNS; end > latest {
			latest, leaf = end, i
		}
	}
	tr.EndToEndNS = latest - rootStart
	if tr.EndToEndNS < 0 {
		tr.EndToEndNS = 0
	}

	// Walk from the latest-ending span to its root, crediting each span
	// the interval its on-path child does not cover: the leaf gets its
	// full duration, each ancestor only the stretch before the child
	// started. Overlapped (pipelined) waits are thus charged once, to
	// the span doing the work.
	var path []int
	for i, hops := leaf, 0; hops <= len(tr.Spans); hops++ {
		path = append(path, i)
		p := tr.Spans[i].ParentID
		if p == 0 {
			break
		}
		pi, ok := byID[p]
		if !ok || pi == i {
			break
		}
		i = pi
	}
	bound := latest
	for _, i := range path {
		s := &tr.Spans[i]
		s.Critical = true
		if seg := bound - s.StartNS; seg > 0 {
			tr.CriticalPathNS += seg
		}
		if s.StartNS < bound {
			bound = s.StartNS
		}
	}
	for i := len(path) - 1; i >= 0; i-- {
		tr.CriticalPath = append(tr.CriticalPath, tr.Spans[path[i]].SpanID)
	}
	return tr
}

// alignSpan pairs a deduplicated span record with the name of the node
// whose store contributed it.
type alignSpan struct {
	rec  *SpanRecord
	node string
}

// alignClocks estimates each recording node's clock offset relative to
// the root node from the wall-clock transit stamps the span pairs
// already carry — the NTP two-sample rule solved per link:
//
//	callee.PhaseTransit:      t1 = start (caller clock, the packet's
//	                          send stamp), t2 = t1+dur (callee clock,
//	                          the receive stamp)
//	caller.PhaseReplyTransit: t3 = start (callee clock, the reply's
//	                          send stamp), t4 = t3+dur (caller clock)
//
//	offset(callee rel caller) = ((t2-t1) + (t3-t4)) / 2
//
// which cancels the (assumed symmetric) transit time. Samples are
// averaged per directed node pair, then composed along a BFS from the
// root node, so a node two hops away is aligned through its
// intermediary. One-way calls have no reply leg; their one-sided
// sample (t2-t1, biased by the transit time) is used only when a link
// has no two-sided sample. Unreachable nodes keep offset zero.
func alignClocks(rootNode string, spans []alignSpan) map[string]int64 {
	byID := make(map[uint64]alignSpan, len(spans))
	for _, s := range spans {
		byID[s.rec.SpanID] = s
	}
	type pair struct{ a, b string } // offset of b relative to a
	sums := make(map[pair]int64)
	counts := make(map[pair]int64)
	weakSums := make(map[pair]int64)
	weakCounts := make(map[pair]int64)
	for _, s := range spans {
		if s.rec.Kind != KindCallee || s.rec.PhaseDur[PhaseTransit] == 0 {
			continue
		}
		caller, ok := byID[s.rec.ParentID]
		if !ok {
			continue
		}
		if caller.node == s.node {
			continue
		}
		p := pair{a: caller.node, b: s.node}
		d1 := s.rec.PhaseDur[PhaseTransit] // t2 - t1
		if d2 := caller.rec.PhaseDur[PhaseReplyTransit]; d2 != 0 {
			// Two-sided sample: (t2-t1) - (t4-t3) over 2.
			sums[p] += (d1 - d2) / 2
			counts[p]++
		} else {
			// No reply leg recorded (one-way call): t2-t1 alone, biased
			// by the transit time. Kept only if no two-sided sample
			// materializes for this link.
			weakSums[p] += d1
			weakCounts[p]++
		}
	}
	for p, n := range weakCounts {
		if counts[p] == 0 {
			sums[p] = weakSums[p] / n
			counts[p] = 1
		} else {
			delete(weakSums, p)
		}
	}

	// Average per directed pair, then BFS the (undirected) link graph
	// from the root, composing offsets along tree edges.
	type edge struct {
		to  string
		off int64
	}
	adj := make(map[string][]edge)
	for p, sum := range sums {
		off := sum / counts[p]
		adj[p.a] = append(adj[p.a], edge{to: p.b, off: off})
		adj[p.b] = append(adj[p.b], edge{to: p.a, off: -off})
	}
	for n := range adj {
		es := adj[n]
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	offsets := map[string]int64{rootNode: 0}
	queue := []string{rootNode}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if _, ok := offsets[e.to]; ok {
				continue
			}
			offsets[e.to] = offsets[cur] + e.off
			queue = append(queue, e.to)
		}
	}
	return offsets
}

// WriteChromeMerged renders a reconstructed cross-node tree as one
// Perfetto-loadable dump with one process (track group) per node, all
// timestamps already aligned to the root node's clock.
func WriteChromeMerged(w io.Writer, tr *Tree) error {
	var epoch int64
	for i := range tr.Spans {
		if s := tr.Spans[i].StartNS; epoch == 0 || s < epoch {
			epoch = s
		}
	}
	us := func(ns int64) float64 { return float64(ns-epoch) / 1e3 }

	out := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"trace_id":         tr.TraceID,
			"end_to_end_ns":    tr.EndToEndNS,
			"critical_path_ns": tr.CriticalPathNS,
		},
	}
	// Deterministic pid per node name.
	var names []string
	seen := map[string]bool{}
	for i := range tr.Spans {
		if n := tr.Spans[i].Node; !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	pidOf := make(map[string]int, len(names))
	for i, n := range names {
		pid := i + 1
		pidOf[n] = pid
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", PID: pid, TID: 0,
				Args: map[string]any{"name": n}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidCaller,
				Args: map[string]any{"name": "caller"}},
			chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidCallee,
				Args: map[string]any{"name": "callee"}},
		)
	}
	for i := range tr.Spans {
		s := &tr.Spans[i]
		tid := tidCaller
		if s.Kind == KindCallee.String() {
			tid = tidCallee
		}
		args := map[string]any{
			"span_id": s.SpanID, "parent_id": s.ParentID, "hop": s.Hop,
			"site": s.Site, "method": s.Method, "seq": s.Seq,
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		if s.Critical {
			args["critical"] = true
		}
		if s.Orphan {
			args["orphan"] = true
		}
		cat := s.Kind
		if s.Critical {
			cat = "critical"
		}
		dur := float64(s.DurNS) / 1e3
		if dur <= 0 {
			dur = 0.001
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Site, Ph: "X", Cat: cat,
			TS: us(s.StartNS), Dur: dur, PID: pidOf[s.Node], TID: tid, Args: args,
		})
	}
	return json.NewEncoder(w).Encode(out)
}
