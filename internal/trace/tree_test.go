package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// mkSpan builds one span record for reconstruction tests.
func mkSpan(traceID, spanID, parentID uint64, hop uint8, kind Kind, from, to int, seq, start, end int64) SpanRecord {
	return SpanRecord{
		Site: "T.m.1", Method: "m", From: from, To: to, Seq: seq,
		Kind: kind, Start: start, End: end,
		TraceID: traceID, SpanID: spanID, ParentID: parentID, Hop: hop,
	}
}

// TestBuildTreeAlignsOffsetsLargerThanSpans reconstructs a two-node
// trace whose callee clock runs a full millisecond ahead — orders of
// magnitude more than any span's duration. Unaligned, the callee span
// would start long after the whole trace ended; the transit stamp
// pairs must recover the offset exactly and rebase the callee inside
// its caller's window.
func TestBuildTreeAlignsOffsetsLargerThanSpans(t *testing.T) {
	const off = int64(1_000_000) // callee clock = caller clock + 1ms
	caller := mkSpan(7, 1, 0, 0, KindCaller, 0, 1, 10, 1000, 1600)
	callee := mkSpan(7, 2, 1, 1, KindCallee, 0, 1, 10, 1200+off, 1400+off)
	// True transit 100ns each way: t1=1100 (caller clock), t2 on the
	// callee clock; reply t3 on the callee clock, t4=1500 (caller).
	callee.PhaseDur[PhaseTransit] = (1200 + off) - 1100      // t2 - t1
	caller.PhaseDur[PhaseReplyTransit] = 1500 - (1400 + off) // t4 - t3

	tree := BuildTree(7, []NodeSpans{
		{Node: "a", Spans: []SpanRecord{caller}},
		{Node: "b", Spans: []SpanRecord{callee}},
	})
	if len(tree.Spans) != 2 || len(tree.Roots) != 1 {
		t.Fatalf("got %d spans, %d roots, want 2 and 1", len(tree.Spans), len(tree.Roots))
	}
	var cal, cee *TreeSpan
	for i := range tree.Spans {
		if tree.Spans[i].Kind == KindCallee.String() {
			cee = &tree.Spans[i]
		} else {
			cal = &tree.Spans[i]
		}
	}
	if cee.OffsetNS != off {
		t.Errorf("callee offset %d, want the injected %d", cee.OffsetNS, off)
	}
	if cee.StartNS != 1200 {
		t.Errorf("aligned callee start %d, want 1200 (rebased onto the caller clock)", cee.StartNS)
	}
	if cee.StartNS < cal.StartNS || cee.StartNS+cee.DurNS > cal.StartNS+cal.DurNS {
		t.Errorf("aligned callee [%d,%d] outside caller window [%d,%d]",
			cee.StartNS, cee.StartNS+cee.DurNS, cal.StartNS, cal.StartNS+cal.DurNS)
	}
	if tree.EndToEndNS != 600 {
		t.Errorf("end-to-end %dns, want the caller's 600ns window", tree.EndToEndNS)
	}
	if tree.CriticalPathNS <= 0 || tree.CriticalPathNS > tree.EndToEndNS {
		t.Errorf("critical path %dns outside (0, %d]", tree.CriticalPathNS, tree.EndToEndNS)
	}
}

// TestBuildTreeOrphanSpans grafts spans whose parent is missing
// (unsampled parent, unreachable node, evicted bucket) in as extra
// roots instead of dropping their subtrees.
func TestBuildTreeOrphanSpans(t *testing.T) {
	root := mkSpan(9, 1, 0, 0, KindCaller, 0, 1, 1, 100, 500)
	// Parent span 50 was never retained; its callee child and that
	// child's own child must still render, connected to each other.
	orphan := mkSpan(9, 3, 50, 1, KindCallee, 0, 1, 2, 200, 400)
	grand := mkSpan(9, 4, 3, 1, KindCaller, 1, 2, 3, 250, 350)
	tree := BuildTree(9, []NodeSpans{{Node: "a", Spans: []SpanRecord{root, orphan, grand}}})
	if tree.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", tree.Orphans)
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("%d roots, want 2 (true root + grafted orphan)", len(tree.Roots))
	}
	var o *TreeSpan
	for i := range tree.Spans {
		if tree.Spans[i].SpanID == 3 {
			o = &tree.Spans[i]
		}
	}
	if o == nil || !o.Orphan {
		t.Fatal("span 3 not flagged orphan")
	}
	if len(o.Children) != 1 || tree.Spans[o.Children[0]].SpanID != 4 {
		t.Errorf("orphan subtree lost its child: %+v", o.Children)
	}
	// The primary root for the end-to-end window must be the real
	// (non-orphan) root.
	if tree.Spans[tree.Roots[0]].SpanID != 1 && tree.Spans[tree.Roots[1]].SpanID != 1 {
		t.Error("true root missing from roots")
	}
	if tree.EndToEndNS != 400 {
		t.Errorf("end-to-end %d, want 400 (root start 100 to latest end 500)", tree.EndToEndNS)
	}
}

// TestBuildTreeDuplicateSpans discards redeliveries both ways a retry
// can produce them: the exact same span ID fetched from two stores,
// and the same call half re-executed under a fresh span ID after a
// dedup-cache eviction (same kind/from/seq).
func TestBuildTreeDuplicateSpans(t *testing.T) {
	root := mkSpan(11, 1, 0, 0, KindCaller, 0, 1, 1, 100, 500)
	callee := mkSpan(11, 2, 1, 1, KindCallee, 0, 1, 1, 200, 300)
	sameID := callee
	reexec := mkSpan(11, 6, 1, 1, KindCallee, 0, 1, 1, 350, 450)
	tree := BuildTree(11, []NodeSpans{
		{Node: "a", Spans: []SpanRecord{root}},
		{Node: "b", Spans: []SpanRecord{callee, reexec}},
		{Node: "b2", Spans: []SpanRecord{sameID}},
	})
	if tree.Duplicates != 2 {
		t.Fatalf("Duplicates = %d, want 2 (same-ID copy + re-executed half)", tree.Duplicates)
	}
	if len(tree.Spans) != 2 {
		t.Fatalf("%d spans retained, want 2", len(tree.Spans))
	}
	for i := range tree.Spans {
		if tree.Spans[i].SpanID == 6 {
			t.Error("re-executed span 6 retained; the first execution should win")
		}
	}
	if len(tree.Roots) != 1 || tree.Orphans != 0 {
		t.Errorf("roots=%d orphans=%d, want a single clean root", len(tree.Roots), tree.Orphans)
	}
}

// TestBuildTreeOneWayLeaf reconstructs a trace ending in a one-way
// call: the callee half records no reply transit, so clock alignment
// falls back to the one-sided (transit-biased) sample, and the one-way
// callee is a leaf that can carry the critical path's tail.
func TestBuildTreeOneWayLeaf(t *testing.T) {
	root := mkSpan(13, 1, 0, 0, KindCaller, 0, 1, 1, 100, 300)
	root.OneWay = true // caller half ends at wire handoff
	callee := mkSpan(13, 2, 1, 1, KindCallee, 0, 1, 1, 400, 900)
	callee.OneWay = true
	callee.PhaseDur[PhaseTransit] = 150 // one-sided sample only
	tree := BuildTree(13, []NodeSpans{
		{Node: "a", Spans: []SpanRecord{root}},
		{Node: "b", Spans: []SpanRecord{callee}},
	})
	var leaf *TreeSpan
	for i := range tree.Spans {
		if tree.Spans[i].SpanID == 2 {
			leaf = &tree.Spans[i]
		}
	}
	if leaf == nil {
		t.Fatal("one-way callee missing from tree")
	}
	if !leaf.OneWay || len(leaf.Children) != 0 {
		t.Errorf("one-way callee not a leaf: oneway=%v children=%v", leaf.OneWay, leaf.Children)
	}
	// The weak sample is the whole transit duration: offset estimate
	// d1 = 150, so the callee rebases from 400 to 250.
	if leaf.OffsetNS != 150 || leaf.StartNS != 250 {
		t.Errorf("one-way alignment: offset=%d start=%d, want 150 and 250", leaf.OffsetNS, leaf.StartNS)
	}
	// The callee outlives the caller (fire-and-forget): it is the
	// latest-ending span and must terminate the critical path.
	if n := len(tree.CriticalPath); n == 0 || tree.CriticalPath[n-1] != 2 {
		t.Errorf("critical path %v should end at the one-way leaf", tree.CriticalPath)
	}
	if !leaf.Critical {
		t.Error("one-way leaf not marked critical")
	}
}

// TestBuildTreeEmptyAndForeign ignores spans of other traces and
// returns an empty tree rather than failing when nothing matches.
func TestBuildTreeEmptyAndForeign(t *testing.T) {
	other := mkSpan(99, 1, 0, 0, KindCaller, 0, 1, 1, 100, 200)
	tree := BuildTree(5, []NodeSpans{{Node: "a", Spans: []SpanRecord{other}}})
	if len(tree.Spans) != 0 || len(tree.Roots) != 0 || tree.EndToEndNS != 0 {
		t.Fatalf("foreign spans leaked into the tree: %+v", tree)
	}
}

// TestWriteChromeMerged pins the merged Perfetto dump's shape: one
// process per node, aligned timestamps, and the critical category on
// critical-path spans.
func TestWriteChromeMerged(t *testing.T) {
	const off = int64(1_000_000)
	caller := mkSpan(7, 1, 0, 0, KindCaller, 0, 1, 10, 1000, 1600)
	callee := mkSpan(7, 2, 1, 1, KindCallee, 0, 1, 10, 1200+off, 1400+off)
	callee.PhaseDur[PhaseTransit] = (1200 + off) - 1100
	caller.PhaseDur[PhaseReplyTransit] = 1500 - (1400 + off)
	tree := BuildTree(7, []NodeSpans{
		{Node: "a", Spans: []SpanRecord{caller}},
		{Node: "b", Spans: []SpanRecord{callee}},
	})
	var buf bytes.Buffer
	if err := WriteChromeMerged(&buf, tree); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	var critical int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			pids[ev["pid"].(float64)] = true
			if ev["cat"] == "critical" {
				critical++
			}
		}
	}
	if len(pids) != 2 {
		t.Errorf("%d process groups, want one per node (2)", len(pids))
	}
	if critical == 0 {
		t.Error("no span carries the critical category")
	}
	if !strings.Contains(buf.String(), "process_name") {
		t.Error("process metadata events missing")
	}
}
