package transport

import (
	"fmt"
	"sync"
)

// ChannelNetwork is an in-process network: one buffered inbox channel
// per node. It is the default interconnect for single-process cluster
// simulations and for tests.
//
// Buffer ownership: Send hands the payload buffer through to the
// receiver zero-copy — the sender gives up ownership (Endpoint.Send
// contract) and the receiver releases the buffer to the wire pool when
// done. Packets dropped at shutdown simply fall to the garbage
// collector.
//
// Shutdown protocol: Close never closes the inbox channels (a send
// blocked on a full inbox would race with the close); instead it
// closes a broadcast `done` channel that every blocked Send and Recv
// selects on. Packets already queued still drain after Close.
type ChannelNetwork struct {
	inboxes []chan Packet
	eps     []*channelEndpoint
	done    chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewChannelNetwork creates a network of n nodes with the given
// per-node inbox buffer depth (the paper's GM layer queues pending
// messages similarly).
func NewChannelNetwork(n, depth int) *ChannelNetwork {
	if depth <= 0 {
		depth = 256
	}
	cn := &ChannelNetwork{
		inboxes: make([]chan Packet, n),
		eps:     make([]*channelEndpoint, n),
		done:    make(chan struct{}),
	}
	for i := range cn.inboxes {
		cn.inboxes[i] = make(chan Packet, depth)
		cn.eps[i] = &channelEndpoint{net: cn, id: i}
	}
	return cn
}

// Size returns the node count.
func (cn *ChannelNetwork) Size() int { return len(cn.inboxes) }

// Endpoint returns node's attachment.
func (cn *ChannelNetwork) Endpoint(node int) Endpoint { return cn.eps[node] }

// Close shuts the network down; blocked senders fail with ErrClosed
// and receivers drain queued packets before reporting closure.
func (cn *ChannelNetwork) Close() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.closed {
		return nil
	}
	cn.closed = true
	close(cn.done)
	return nil
}

type channelEndpoint struct {
	net *ChannelNetwork
	id  int
}

func (e *channelEndpoint) Send(p Packet) error {
	if p.To < 0 || p.To >= len(e.net.inboxes) {
		return fmt.Errorf("transport: no node %d", p.To)
	}
	p.From = e.id
	select {
	case <-e.net.done:
		return ErrClosed
	default:
	}
	select {
	case e.net.inboxes[p.To] <- p:
		return nil
	case <-e.net.done:
		return ErrClosed
	}
}

func (e *channelEndpoint) Recv() (Packet, bool) {
	select {
	case p := <-e.net.inboxes[e.id]:
		return stampRecv(p), true
	case <-e.net.done:
		// Drain anything already queued before reporting closure.
		select {
		case p := <-e.net.inboxes[e.id]:
			return stampRecv(p), true
		default:
			return Packet{}, false
		}
	}
}

func (e *channelEndpoint) Close() error { return e.net.Close() }
