package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"cormi/internal/wire"
)

// FaultRates configures the per-packet fault probabilities of one
// directed node pair (or, as FaultConfig's embedded default, of every
// pair). Probabilities are in [0, 1]; zero means the fault never fires.
type FaultRates struct {
	Drop    float64 // packet silently discarded
	Dup     float64 // packet delivered twice
	Reorder float64 // packet held back and delivered after a successor
	Corrupt float64 // one payload byte flipped
	DelayNS int64   // max extra virtual latency, uniform in [0, DelayNS]
}

// FaultConfig seeds and configures a FaultyNetwork. The embedded
// FaultRates apply to every directed node pair unless overridden in
// Pairs. All fault decisions derive from Seed and a per-pair packet
// counter, so a given traffic pattern sees a reproducible fault
// sequence.
type FaultConfig struct {
	Seed int64
	FaultRates
	// Pairs overrides the default rates for specific directed pairs,
	// keyed [from, to].
	Pairs map[[2]int]FaultRates
}

// Enabled reports whether any fault can ever fire.
func (c FaultConfig) Enabled() bool {
	on := func(r FaultRates) bool {
		return r.Drop > 0 || r.Dup > 0 || r.Reorder > 0 || r.Corrupt > 0 || r.DelayNS > 0
	}
	if on(c.FaultRates) {
		return true
	}
	for _, r := range c.Pairs {
		if on(r) {
			return true
		}
	}
	return false
}

// FaultStats counts the faults a FaultyNetwork injected.
type FaultStats struct {
	Dropped    atomic.Int64
	Duplicated atomic.Int64
	Reordered  atomic.Int64
	Corrupted  atomic.Int64
	Delayed    atomic.Int64
	Blocked    atomic.Int64 // sends black-holed by a partition
}

// PartitionReporter is implemented by networks that can report a node
// pair as partitioned; the RMI layer uses it to turn a deadline expiry
// into ErrPartitioned instead of ErrTimeout.
type PartitionReporter interface {
	Partitioned(from, to int) bool
}

// FaultyNetwork decorates any Network with deterministic, seeded fault
// injection on the send path: drops, duplicates, reordering, payload
// corruption, extra virtual delay, and node partitions. Delay advances
// the packet's virtual timestamp (the simtime cost model turns it into
// arrival time); drop/dup/reorder/corrupt act on real delivery, which
// is what the RMI layer's checksums, retries and dedup must survive.
// Trace wall timestamps (Packet.Wall) ride through unchanged — dup and
// reorder copies keep the original send time, and RecvWall is stamped
// by the inner network's receive side — so traced transit reflects the
// real (including fault-induced) delivery schedule.
type FaultyNetwork struct {
	inner Network
	cfg   FaultConfig
	eps   []*faultyEndpoint

	partMu sync.RWMutex
	part   map[[2]int]bool

	Stats FaultStats
}

// NewFaultyNetwork wraps inner with fault injection.
func NewFaultyNetwork(inner Network, cfg FaultConfig) *FaultyNetwork {
	f := &FaultyNetwork{
		inner: inner,
		cfg:   cfg,
		part:  make(map[[2]int]bool),
	}
	n := inner.Size()
	f.eps = make([]*faultyEndpoint, n)
	for i := 0; i < n; i++ {
		f.eps[i] = &faultyEndpoint{
			net:   f,
			id:    i,
			inner: inner.Endpoint(i),
			seq:   make([]atomic.Uint64, n),
			holds: make([]holdSlot, n),
		}
	}
	return f
}

// Size returns the node count.
func (f *FaultyNetwork) Size() int { return f.inner.Size() }

// Endpoint returns node's fault-injecting attachment.
func (f *FaultyNetwork) Endpoint(node int) Endpoint { return f.eps[node] }

// Close releases held packets and closes the underlying network.
func (f *FaultyNetwork) Close() error {
	for _, ep := range f.eps {
		ep.dropHeld()
	}
	return f.inner.Close()
}

// Partition blocks all traffic between a and b (both directions) until
// Heal. Blocked sends are black-holed, as on a real partitioned link —
// the sender learns nothing.
func (f *FaultyNetwork) Partition(a, b int) {
	f.partMu.Lock()
	f.part[[2]int{a, b}] = true
	f.part[[2]int{b, a}] = true
	f.partMu.Unlock()
}

// Heal removes the partition between a and b.
func (f *FaultyNetwork) Heal(a, b int) {
	f.partMu.Lock()
	delete(f.part, [2]int{a, b})
	delete(f.part, [2]int{b, a})
	f.partMu.Unlock()
}

// Partitioned reports whether traffic from one node to another is
// currently blocked.
func (f *FaultyNetwork) Partitioned(from, to int) bool {
	f.partMu.RLock()
	defer f.partMu.RUnlock()
	return f.part[[2]int{from, to}]
}

func (f *FaultyNetwork) rates(from, to int) FaultRates {
	if r, ok := f.cfg.Pairs[[2]int{from, to}]; ok {
		return r
	}
	return f.cfg.FaultRates
}

// holdFlushDelay bounds how long a reordered packet can be held when no
// successor traffic arrives on its link to release it.
const holdFlushDelay = 2 * time.Millisecond

type holdSlot struct {
	mu    sync.Mutex
	p     *Packet
	timer *time.Timer
}

type faultyEndpoint struct {
	net   *FaultyNetwork
	id    int
	inner Endpoint
	seq   []atomic.Uint64 // per-destination packet counter
	holds []holdSlot      // per-destination reorder holdback
}

// splitmix64 is the SplitMix64 mixer; it drives all fault decisions so
// they depend only on (seed, from, to, packet index).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny deterministic stream for one packet's fault rolls.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state = splitmix64(r.state)
	return r.state
}

func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		r.next()
		return true
	}
	return float64(r.next()>>11)/(1<<53) < p
}

func (e *faultyEndpoint) Send(p Packet) error {
	f := e.net
	p.From = e.id
	if f.Partitioned(e.id, p.To) {
		f.Stats.Blocked.Add(1)
		return nil
	}
	r := f.rates(e.id, p.To)
	n := e.seq[p.To].Add(1)
	s := rng{state: uint64(f.cfg.Seed) ^ uint64(e.id)<<40 ^ uint64(p.To)<<24 ^ n}

	if s.chance(r.Corrupt) && len(p.Payload) > 0 {
		// Flip a byte in a private copy; the original is abandoned to
		// the GC (it may not be pooled — under the ownership protocol we
		// own it, but fault paths favor safety over recycling).
		b := wire.GetBuf(len(p.Payload))
		copy(b, p.Payload)
		b[int(s.next()%uint64(len(b)))] ^= byte(1 + s.next()%255)
		p.Payload = b
		f.Stats.Corrupted.Add(1)
	}
	if s.chance(r.Drop) {
		f.Stats.Dropped.Add(1)
		return nil
	}
	if r.DelayNS > 0 {
		if d := int64(s.next() % uint64(r.DelayNS+1)); d > 0 {
			p.TS += d
			f.Stats.Delayed.Add(1)
		}
	}
	dup := s.chance(r.Dup)
	reorder := s.chance(r.Reorder)

	// A duplicate needs its own buffer: each inner Send takes ownership
	// of the payload it is given (it may recycle it once written), so
	// the same slice must never be handed down twice.
	var dupPkt *Packet
	if dup {
		b := wire.GetBuf(len(p.Payload))
		copy(b, p.Payload)
		dp := p
		dp.Payload = b
		dupPkt = &dp
	}

	// Release any packet held back on this link: it goes out after the
	// current one, which is the reordering.
	h := &e.holds[p.To]
	h.mu.Lock()
	held := h.p
	h.p = nil
	if held != nil && h.timer != nil {
		h.timer.Stop()
	}
	if reorder && held == nil {
		// Hold the current packet until the next one on this link (or a
		// failsafe timer, so the last packet of a burst is not stranded).
		cp := p
		h.p = &cp
		h.timer = time.AfterFunc(holdFlushDelay, func() { e.flushHeld(p.To) })
		h.mu.Unlock()
		f.Stats.Reordered.Add(1)
		return nil
	}
	h.mu.Unlock()

	if err := e.inner.Send(p); err != nil {
		return err
	}
	if dupPkt != nil {
		f.Stats.Duplicated.Add(1)
		if err := e.inner.Send(*dupPkt); err != nil {
			return err
		}
	}
	if held != nil {
		if err := e.inner.Send(*held); err != nil {
			return err
		}
	}
	return nil
}

// flushHeld delivers the packet held back for destination `to`, if any.
func (e *faultyEndpoint) flushHeld(to int) {
	h := &e.holds[to]
	h.mu.Lock()
	p := h.p
	h.p = nil
	h.mu.Unlock()
	if p != nil {
		_ = e.inner.Send(*p)
	}
}

// dropHeld discards held packets (network shutdown).
func (e *faultyEndpoint) dropHeld() {
	for i := range e.holds {
		h := &e.holds[i]
		h.mu.Lock()
		h.p = nil
		if h.timer != nil {
			h.timer.Stop()
		}
		h.mu.Unlock()
	}
}

func (e *faultyEndpoint) Recv() (Packet, bool) { return e.inner.Recv() }

func (e *faultyEndpoint) Close() error { return e.net.Close() }
