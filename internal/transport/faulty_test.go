package transport

import (
	"sync"
	"testing"
	"time"
)

// drain consumes packets from an endpoint until it closes, returning
// the received packets through a channel read by the caller.
func drain(e Endpoint) <-chan []Packet {
	out := make(chan []Packet, 1)
	go func() {
		var got []Packet
		for {
			p, ok := e.Recv()
			if !ok {
				out <- got
				return
			}
			got = append(got, p)
		}
	}()
	return out
}

func TestFaultyNetworkRates(t *testing.T) {
	const n = 10000
	f := NewFaultyNetwork(NewChannelNetwork(2, 64), FaultConfig{
		Seed:       42,
		FaultRates: FaultRates{Drop: 0.05, Dup: 0.03, Corrupt: 0.02, DelayNS: 1000},
	})
	rx := drain(f.Endpoint(1))
	e0 := f.Endpoint(0)
	for i := 0; i < n; i++ {
		e0.Send(Packet{To: 1, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	}
	f.Close()
	got := <-rx

	check := func(name string, count int64, rate float64) {
		t.Helper()
		want := rate * n
		if float64(count) < want/2 || float64(count) > want*2 {
			t.Errorf("%s = %d, want about %.0f", name, count, want)
		}
	}
	check("Dropped", f.Stats.Dropped.Load(), 0.05)
	check("Duplicated", f.Stats.Duplicated.Load(), 0.03)
	check("Corrupted", f.Stats.Corrupted.Load(), 0.02)
	if f.Stats.Delayed.Load() == 0 {
		t.Error("no packets delayed")
	}

	// Conservation: delivered = sent - dropped + duplicated.
	want := n - f.Stats.Dropped.Load() + f.Stats.Duplicated.Load()
	if int64(len(got)) != want {
		t.Errorf("delivered %d packets, want %d", len(got), want)
	}
	// Corrupted frames arrive with a mutated payload; everything else
	// arrives intact.
	var mutated int64
	for _, p := range got {
		if string(p.Payload) != "\x01\x02\x03\x04\x05\x06\x07\x08" {
			mutated++
		}
	}
	// A corrupted packet may also be dropped (losing it) or duplicated
	// (delivering it twice), so compare loosely against the injected
	// count rather than exactly.
	corr := f.Stats.Corrupted.Load()
	if mutated < corr/2 || mutated > corr*2 {
		t.Errorf("%d mutated payloads received, injector reports %d", mutated, corr)
	}
}

func TestFaultyNetworkDeterministic(t *testing.T) {
	run := func(seed int64) [4]int64 {
		f := NewFaultyNetwork(NewChannelNetwork(2, 64), FaultConfig{
			Seed:       seed,
			FaultRates: FaultRates{Drop: 0.1, Dup: 0.1, Corrupt: 0.1, DelayNS: 500},
		})
		rx := drain(f.Endpoint(1))
		e0 := f.Endpoint(0)
		for i := 0; i < 2000; i++ {
			e0.Send(Packet{To: 1, Payload: []byte("payload")})
		}
		f.Close()
		<-rx
		return [4]int64{
			f.Stats.Dropped.Load(), f.Stats.Duplicated.Load(),
			f.Stats.Corrupted.Load(), f.Stats.Delayed.Load(),
		}
	}
	if a, b := run(7), run(7); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := run(7), run(8); a == b {
		t.Errorf("different seeds produced identical fault sequences: %v", a)
	}
}

func TestFaultyNetworkReorder(t *testing.T) {
	f := NewFaultyNetwork(NewChannelNetwork(2, 4096), FaultConfig{
		Seed:       1,
		FaultRates: FaultRates{Reorder: 0.2},
	})
	rx := drain(f.Endpoint(1))
	e0 := f.Endpoint(0)
	const n = 500
	for i := 0; i < n; i++ {
		e0.Send(Packet{To: 1, TS: int64(i), Payload: []byte{byte(i)}})
	}
	// Let any trailing holdback flush before closing.
	time.Sleep(2 * holdFlushDelay)
	f.Close()
	got := <-rx
	if len(got) != n {
		t.Fatalf("delivered %d packets, want %d (reorder must not lose packets)", len(got), n)
	}
	if f.Stats.Reordered.Load() == 0 {
		t.Fatal("no packets reordered")
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i].TS < got[i-1].TS {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("reordering injected but delivery order is still sorted")
	}
}

func TestFaultyNetworkPartition(t *testing.T) {
	f := NewFaultyNetwork(NewChannelNetwork(2, 16), FaultConfig{Seed: 3})
	e0 := f.Endpoint(0)

	f.Partition(0, 1)
	if !f.Partitioned(0, 1) || !f.Partitioned(1, 0) {
		t.Fatal("Partition should block both directions")
	}
	if err := e0.Send(Packet{To: 1, Payload: []byte("lost")}); err != nil {
		t.Fatalf("partitioned send should be silently black-holed, got %v", err)
	}
	if f.Stats.Blocked.Load() != 1 {
		t.Fatalf("Blocked = %d, want 1", f.Stats.Blocked.Load())
	}

	f.Heal(0, 1)
	if f.Partitioned(0, 1) {
		t.Fatal("Heal did not clear the partition")
	}
	rx := drain(f.Endpoint(1))
	if err := e0.Send(Packet{To: 1, Payload: []byte("through")}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got := <-rx
	if len(got) != 1 || string(got[0].Payload) != "through" {
		t.Fatalf("after heal got %v", got)
	}
}

// TestFaultyNetworkPerPairRates checks that Pairs overrides confine
// faults to the configured directed link.
func TestFaultyNetworkPerPairRates(t *testing.T) {
	f := NewFaultyNetwork(NewChannelNetwork(2, 64), FaultConfig{
		Seed:  9,
		Pairs: map[[2]int]FaultRates{{0, 1}: {Drop: 1}},
	})
	rx := drain(f.Endpoint(0))
	rx1 := drain(f.Endpoint(1))
	for i := 0; i < 20; i++ {
		f.Endpoint(0).Send(Packet{To: 1, Payload: []byte("fwd")})
		f.Endpoint(1).Send(Packet{To: 0, Payload: []byte("rev")})
	}
	f.Close()
	if got := <-rx1; len(got) != 0 {
		t.Errorf("0→1 has Drop=1 but %d packets got through", len(got))
	}
	if got := <-rx; len(got) != 20 {
		t.Errorf("1→0 is fault-free but delivered %d of 20", len(got))
	}
}

// concurrentCloseTest exercises a network with racing senders and
// receivers while Close lands mid-traffic: no deadlock, no panic, and
// Recv eventually reports closure to every receiver.
func concurrentCloseTest(t *testing.T, nw Network) {
	t.Helper()
	const nodes = 3
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nodes; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			ep := nw.Endpoint(i)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := ep.Send(Packet{To: (i + 1) % nodes, Payload: []byte{byte(j)}}); err != nil {
					return // closed networks reject sends; that is the contract
				}
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			ep := nw.Endpoint(i)
			for {
				if _, ok := ep.Recv(); !ok {
					return
				}
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	if err := nw.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("senders/receivers did not unwind after Close")
	}
}

func TestChannelNetworkConcurrentClose(t *testing.T) {
	concurrentCloseTest(t, NewChannelNetwork(3, 8))
}

func TestTCPNetworkConcurrentClose(t *testing.T) {
	nw, err := NewTCPNetworkLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	concurrentCloseTest(t, nw)
}

func TestFaultyNetworkConcurrentClose(t *testing.T) {
	concurrentCloseTest(t, NewFaultyNetwork(NewChannelNetwork(3, 8), FaultConfig{
		Seed:       5,
		FaultRates: FaultRates{Drop: 0.1, Dup: 0.1, Reorder: 0.1, Corrupt: 0.1},
	}))
}
