package transport

import (
	"bytes"
	"testing"

	"cormi/internal/wire"
)

// TestTCPPooledRoundTrip pushes many variably-sized pooled frames
// through a real TCP connection and verifies the buffer ownership
// protocol end to end: the sender fills a pooled buffer and hands it
// to Send (which recycles it after the write), the receiver gets its
// payload in a pooled buffer, checks the bytes and returns it with
// PutBuf. Buffer recycling must never let one frame's bytes bleed
// into the next.
func TestTCPPooledRoundTrip(t *testing.T) {
	net, err := NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	e0, e1 := net.Endpoint(0), net.Endpoint(1)

	const frames = 200
	go func() {
		for i := 0; i < frames; i++ {
			size := 1 + (i*37)%4096
			b := wire.GetBuf(size)
			for j := range b {
				b[j] = byte(i)
			}
			// Send owns b from here on (it recycles it after writing).
			if err := e0.Send(Packet{To: 1, TS: int64(i), Payload: b}); err != nil {
				return
			}
		}
	}()

	for i := 0; i < frames; i++ {
		p, ok := e1.Recv()
		if !ok {
			t.Fatalf("endpoint closed after %d frames", i)
		}
		wantSize := 1 + (i*37)%4096
		want := bytes.Repeat([]byte{byte(i)}, wantSize)
		if !bytes.Equal(p.Payload, want) {
			t.Fatalf("frame %d: got %d bytes (first=%d), want %d bytes of %d",
				i, len(p.Payload), p.Payload[0], wantSize, byte(i))
		}
		if p.TS != int64(i) {
			t.Fatalf("frame %d: TS=%d", i, p.TS)
		}
		wire.PutBuf(p.Payload)
	}
}
