package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"cormi/internal/wire"
)

// TCPNetwork connects nodes over TCP with length-prefixed frames. Each
// frame carries a 24-byte header (length, sender id, virtual
// timestamp, wall-clock trace timestamp) followed by the payload.
// Connections are dialed lazily and cached.
//
// Buffer ownership: Send writes the payload to the socket and then
// releases it to the wire pool (the sender gave up ownership per the
// Endpoint.Send contract); the read loop reads payloads into pooled
// buffers, so steady-state traffic allocates nothing on either side.
type TCPNetwork struct {
	addrs     []string
	listeners []net.Listener
	eps       []*tcpEndpoint

	mu     sync.Mutex
	closed bool
}

// NewTCPNetworkLocal starts an n-node TCP network entirely on the
// loopback interface, used by tests and the distributed-mode demo.
func NewTCPNetworkLocal(n int) (*TCPNetwork, error) {
	tn := &TCPNetwork{
		addrs:     make([]string, n),
		listeners: make([]net.Listener, n),
		eps:       make([]*tcpEndpoint, n),
	}
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tn.Close()
			return nil, err
		}
		tn.listeners[i] = l
		tn.addrs[i] = l.Addr().String()
	}
	for i := 0; i < n; i++ {
		ep := &tcpEndpoint{
			net:   tn,
			id:    i,
			inbox: make(chan Packet, 256),
			done:  make(chan struct{}),
			conns: make(map[int]net.Conn),
		}
		tn.eps[i] = ep
		go ep.acceptLoop(tn.listeners[i])
	}
	return tn, nil
}

// Size returns the node count.
func (tn *TCPNetwork) Size() int { return len(tn.addrs) }

// Endpoint returns node's attachment.
func (tn *TCPNetwork) Endpoint(node int) Endpoint { return tn.eps[node] }

// Close shuts down listeners and connections.
func (tn *TCPNetwork) Close() error {
	tn.mu.Lock()
	if tn.closed {
		tn.mu.Unlock()
		return nil
	}
	tn.closed = true
	tn.mu.Unlock()
	for _, l := range tn.listeners {
		if l != nil {
			l.Close()
		}
	}
	for _, ep := range tn.eps {
		if ep != nil {
			ep.close()
		}
	}
	return nil
}

type tcpEndpoint struct {
	net *TCPNetwork
	id  int
	// inbox is never closed — concurrent readLoops may be mid-send.
	// done signals shutdown instead; Recv drains what is buffered and
	// then reports closure.
	inbox chan Packet
	done  chan struct{}

	mu     sync.Mutex
	conns  map[int]net.Conn // outgoing, keyed by destination
	accept []net.Conn       // incoming
	closed bool
}

func (e *tcpEndpoint) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.accept = append(e.accept, c)
		e.mu.Unlock()
		go e.readLoop(c)
	}
}

// tcpMetaSize is the per-frame metadata after the length prefix:
// sender id (uint32), virtual timestamp (uint64), and wall-clock send
// timestamp (uint64, zero when tracing is off) — the trace layer's
// transit measurements survive the real network stack.
const tcpMetaSize = 20

func (e *tcpEndpoint) readLoop(c net.Conn) {
	// Every connection opens with the wire preamble (magic + protocol
	// version, written by the dialer below): a peer speaking another
	// protocol or version is rejected from its first six bytes instead
	// of having its stream misparsed as frames.
	var pre [wire.PreambleSize]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		c.Close()
		return
	}
	if err := wire.CheckPreamble(pre[:]); err != nil {
		c.Close()
		return
	}
	// The 24-byte header (length + metadata) lands in a stack buffer;
	// only the payload is read into a pooled buffer, so recycling loses
	// no capacity to header prefixes.
	var hdr [4 + tcpMetaSize]byte
	for {
		if _, err := io.ReadFull(c, hdr[:4]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > wire.MaxFrameSize {
			return
		}
		if n < tcpMetaSize {
			// Runt frame: discard its bytes to stay in sync.
			if _, err := io.CopyN(io.Discard, c, int64(n)); err != nil {
				return
			}
			continue
		}
		if _, err := io.ReadFull(c, hdr[4:]); err != nil {
			return
		}
		payload := wire.GetBuf(int(n) - tcpMetaSize)
		if _, err := io.ReadFull(c, payload); err != nil {
			wire.PutBuf(payload)
			return
		}
		p := stampRecv(Packet{
			From:    int(int32(binary.LittleEndian.Uint32(hdr[4:]))),
			TS:      int64(binary.LittleEndian.Uint64(hdr[8:])),
			Wall:    int64(binary.LittleEndian.Uint64(hdr[16:])),
			To:      e.id,
			Payload: payload,
		})
		select {
		case e.inbox <- p:
		case <-e.done:
			wire.PutBuf(payload)
			return
		}
	}
}

func (e *tcpEndpoint) Send(p Packet) error {
	if p.To < 0 || p.To >= e.net.Size() {
		return fmt.Errorf("transport: no node %d", p.To)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	c, ok := e.conns[p.To]
	e.mu.Unlock()
	if !ok {
		var err error
		c, err = net.Dial("tcp", e.net.addrs[p.To])
		if err != nil {
			return err
		}
		// Stamp the fresh connection with the version preamble before
		// any frame. If we lose the caching race the duplicate dial is
		// closed; its receiver-side readLoop sees a valid preamble
		// followed by EOF, which is a clean no-traffic connection.
		pre := wire.Preamble()
		if _, err := c.Write(pre[:]); err != nil {
			c.Close()
			return err
		}
		e.mu.Lock()
		if prev, raced := e.conns[p.To]; raced {
			c.Close()
			c = prev
		} else {
			e.conns[p.To] = c
		}
		e.mu.Unlock()
	}
	if tcpMetaSize+len(p.Payload) > wire.MaxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", tcpMetaSize+len(p.Payload))
	}
	// Header from the stack, payload straight from the caller's buffer:
	// no frame assembly copy, no allocation.
	var hdr [4 + tcpMetaSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(tcpMetaSize+len(p.Payload)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.id))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(p.TS))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(p.Wall))

	// Serialize writes per connection.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	_, err := c.Write(hdr[:])
	if err == nil {
		_, err = c.Write(p.Payload)
	}
	e.mu.Unlock()
	if err == nil {
		// The bytes are on the wire and the sender gave up ownership:
		// recycle the buffer.
		wire.PutBuf(p.Payload)
	}
	return err
}

func (e *tcpEndpoint) Recv() (Packet, bool) {
	select {
	case p := <-e.inbox:
		return p, true
	case <-e.done:
		// Shutdown: hand out whatever is still buffered, then report
		// closure.
		select {
		case p := <-e.inbox:
			return p, true
		default:
			return Packet{}, false
		}
	}
}

func (e *tcpEndpoint) Close() error { return e.net.Close() }

func (e *tcpEndpoint) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, c := range e.conns {
		c.Close()
	}
	for _, c := range e.accept {
		c.Close()
	}
	close(e.done)
	e.mu.Unlock()
}
