// Package transport provides the cluster interconnect. Two
// implementations exist: an in-process channel network (the default —
// it stands in for the user-level GM layer on Myrinet, with the virtual
// cost model supplying the timing) and a TCP network for genuinely
// distributed runs.
package transport

import "errors"

// ErrClosed is returned when sending over a closed network.
var ErrClosed = errors.New("transport: network closed")

// Packet is one message between nodes. TS is the sender's virtual send
// timestamp in nanoseconds; the receiver syncs its clock with
// TS + wire delay to preserve causality in the virtual-time model.
//
// Payload ownership follows the wire-pool protocol (wire.GetBuf /
// wire.PutBuf, DESIGN.md §8): Send takes ownership of Payload, Recv
// hands ownership to the receiver.
type Packet struct {
	From, To int
	TS       int64
	Payload  []byte
}

// Endpoint is a node's attachment to the network.
type Endpoint interface {
	// Send delivers a packet; it must be safe for concurrent use.
	// Send takes ownership of p.Payload: once it returns — success or
	// error — the caller must neither read nor write the buffer again.
	// A sender that needs the bytes later (retransmits) keeps its own
	// copy. Implementations either hand the buffer through to the
	// receiver unchanged (ChannelNetwork) or copy it onto the wire and
	// release it to the frame pool (TCPNetwork).
	Send(p Packet) error
	// Recv blocks for the next packet; ok is false once the endpoint
	// is closed and drained. The receiver owns p.Payload and should
	// return it with wire.PutBuf once nothing references it; data that
	// must outlive the frame is copied out, never aliased.
	Recv() (p Packet, ok bool)
	// Close shuts down the endpoint's receive side.
	Close() error
}

// Network connects a fixed set of nodes, numbered 0..Size()-1.
type Network interface {
	Endpoint(node int) Endpoint
	Size() int
	Close() error
}
