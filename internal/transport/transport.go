// Package transport provides the cluster interconnect. Two
// implementations exist: an in-process channel network (the default —
// it stands in for the user-level GM layer on Myrinet, with the virtual
// cost model supplying the timing) and a TCP network for genuinely
// distributed runs.
package transport

import (
	"errors"
	"time"
)

// ErrClosed is returned when sending over a closed network.
var ErrClosed = errors.New("transport: network closed")

// stampRecv records the wall-clock receive time on traced packets
// (Wall != 0). Untraced packets pass through untouched — no clock
// read on the hot path.
func stampRecv(p Packet) Packet {
	if p.Wall != 0 {
		p.RecvWall = time.Now().UnixNano()
	}
	return p
}

// Packet is one message between nodes. TS is the sender's virtual send
// timestamp in nanoseconds; the receiver syncs its clock with
// TS + wire delay to preserve causality in the virtual-time model.
//
// Wall and RecvWall are the observability layer's wall-clock
// timestamps (nanoseconds since the Unix epoch, internal/trace.Now):
// a traced sender stamps Wall before Send, and every transport stamps
// RecvWall on the receive side — but only for packets whose Wall is
// nonzero, so untraced traffic pays one predictable branch and no
// clock read. The pair lets the receiver measure real network +
// queueing transit per packet, independent of the virtual cost model.
//
// Payload ownership follows the wire-pool protocol (wire.GetBuf /
// wire.PutBuf, DESIGN.md §8): Send takes ownership of Payload, Recv
// hands ownership to the receiver.
type Packet struct {
	From, To int
	TS       int64
	Wall     int64 // wall-clock send time; 0 = untraced
	RecvWall int64 // wall-clock receive time, transport-stamped when Wall != 0
	Payload  []byte
}

// Endpoint is a node's attachment to the network.
type Endpoint interface {
	// Send delivers a packet; it must be safe for concurrent use.
	// Send takes ownership of p.Payload: once it returns — success or
	// error — the caller must neither read nor write the buffer again.
	// A sender that needs the bytes later (retransmits) keeps its own
	// copy. Implementations either hand the buffer through to the
	// receiver unchanged (ChannelNetwork) or copy it onto the wire and
	// release it to the frame pool (TCPNetwork).
	Send(p Packet) error
	// Recv blocks for the next packet; ok is false once the endpoint
	// is closed and drained. The receiver owns p.Payload and should
	// return it with wire.PutBuf once nothing references it; data that
	// must outlive the frame is copied out, never aliased.
	Recv() (p Packet, ok bool)
	// Close shuts down the endpoint's receive side.
	Close() error
}

// Network connects a fixed set of nodes, numbered 0..Size()-1.
type Network interface {
	Endpoint(node int) Endpoint
	Size() int
	Close() error
}
