// Package transport provides the cluster interconnect. Two
// implementations exist: an in-process channel network (the default —
// it stands in for the user-level GM layer on Myrinet, with the virtual
// cost model supplying the timing) and a TCP network for genuinely
// distributed runs.
package transport

import "errors"

// ErrClosed is returned when sending over a closed network.
var ErrClosed = errors.New("transport: network closed")

// Packet is one message between nodes. TS is the sender's virtual send
// timestamp in nanoseconds; the receiver syncs its clock with
// TS + wire delay to preserve causality in the virtual-time model.
type Packet struct {
	From, To int
	TS       int64
	Payload  []byte
}

// Endpoint is a node's attachment to the network.
type Endpoint interface {
	// Send delivers a packet; it must be safe for concurrent use.
	Send(p Packet) error
	// Recv blocks for the next packet; ok is false once the endpoint
	// is closed and drained.
	Recv() (p Packet, ok bool)
	// Close shuts down the endpoint's receive side.
	Close() error
}

// Network connects a fixed set of nodes, numbered 0..Size()-1.
type Network interface {
	Endpoint(node int) Endpoint
	Size() int
	Close() error
}
