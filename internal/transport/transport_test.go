package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testNetwork(t *testing.T, mk func(n int) (Network, error)) {
	t.Helper()
	nw, err := mk(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if nw.Size() != 3 {
		t.Fatalf("Size = %d", nw.Size())
	}

	// Point-to-point with timestamp.
	e0, e1 := nw.Endpoint(0), nw.Endpoint(1)
	if err := e0.Send(Packet{To: 1, TS: 42, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	p, ok := e1.Recv()
	if !ok || p.From != 0 || p.To != 1 || p.TS != 42 || string(p.Payload) != "hello" {
		t.Fatalf("got %+v ok=%v", p, ok)
	}

	// Many concurrent senders to one receiver; all must arrive.
	const per = 50
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := nw.Endpoint(s)
			for i := 0; i < per; i++ {
				if err := ep.Send(Packet{To: 2, Payload: []byte(fmt.Sprintf("%d/%d", s, i))}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	got := make(map[string]bool)
	done := make(chan struct{})
	go func() {
		defer close(done)
		e2 := nw.Endpoint(2)
		for len(got) < 3*per {
			p, ok := e2.Recv()
			if !ok {
				return
			}
			got[string(p.Payload)] = true
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout: received %d of %d", len(got), 3*per)
	}
	if len(got) != 3*per {
		t.Fatalf("received %d distinct messages, want %d", len(got), 3*per)
	}

	// Invalid destination.
	if err := e0.Send(Packet{To: 99}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestChannelNetwork(t *testing.T) {
	testNetwork(t, func(n int) (Network, error) {
		return NewChannelNetwork(n, 16), nil
	})
}

func TestTCPNetwork(t *testing.T) {
	testNetwork(t, func(n int) (Network, error) {
		return NewTCPNetworkLocal(n)
	})
}

func TestChannelNetworkClose(t *testing.T) {
	nw := NewChannelNetwork(2, 4)
	e0, e1 := nw.Endpoint(0), nw.Endpoint(1)
	if err := e0.Send(Packet{To: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	nw.Close()
	// Pending message still drains, then the channel reports closed.
	if p, ok := e1.Recv(); !ok || string(p.Payload) != "x" {
		t.Fatalf("drain failed: %+v %v", p, ok)
	}
	if _, ok := e1.Recv(); ok {
		t.Fatal("Recv after close should report !ok")
	}
	if err := e0.Send(Packet{To: 1}); err != ErrClosed {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPNetworkClose(t *testing.T) {
	nw, err := NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	e0 := nw.Endpoint(0)
	if err := e0.Send(Packet{To: 1, Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	nw.Close()
	if err := e0.Send(Packet{To: 1}); err == nil {
		t.Fatal("Send after close succeeded")
	}
	if err := nw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLargePayloadTCP(t *testing.T) {
	nw, err := NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := nw.Endpoint(0).Send(Packet{To: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	p, ok := nw.Endpoint(1).Recv()
	if !ok || len(p.Payload) != len(payload) {
		t.Fatalf("large payload: ok=%v len=%d", ok, len(p.Payload))
	}
	for i := range p.Payload {
		if p.Payload[i] != byte(i) {
			t.Fatalf("corrupt byte at %d", i)
		}
	}
}
