package transport

import (
	"testing"
	"time"

	"cormi/internal/wire"
)

// Wall-clock timestamping contract: every transport stamps RecvWall on
// packets that carry a sender Wall timestamp, and leaves untraced
// packets (Wall == 0) unstamped.

func payload(s string) []byte {
	b := wire.GetBuf(len(s))
	copy(b, s)
	return b
}

func checkWallStamping(t *testing.T, name string, send func(p Packet) error, recv func() (Packet, bool)) {
	t.Helper()
	// Untraced: no stamp.
	if err := send(Packet{To: 1, Payload: payload("plain")}); err != nil {
		t.Fatalf("%s: send: %v", name, err)
	}
	p, ok := recv()
	if !ok {
		t.Fatalf("%s: recv failed", name)
	}
	if p.Wall != 0 || p.RecvWall != 0 {
		t.Errorf("%s: untraced packet stamped: wall=%d recv=%d", name, p.Wall, p.RecvWall)
	}
	wire.PutBuf(p.Payload)

	// Traced: RecvWall stamped at/after the send stamp.
	sent := time.Now().UnixNano()
	if err := send(Packet{To: 1, Wall: sent, Payload: payload("traced")}); err != nil {
		t.Fatalf("%s: send: %v", name, err)
	}
	p, ok = recv()
	if !ok {
		t.Fatalf("%s: recv failed", name)
	}
	if p.Wall != sent {
		t.Errorf("%s: wall timestamp lost: got %d want %d", name, p.Wall, sent)
	}
	if p.RecvWall < sent {
		t.Errorf("%s: RecvWall %d < send wall %d", name, p.RecvWall, sent)
	}
	wire.PutBuf(p.Payload)
}

func TestChannelWallStamping(t *testing.T) {
	n := NewChannelNetwork(2, 8)
	defer n.Close()
	checkWallStamping(t, "channel", n.Endpoint(0).Send, n.Endpoint(1).Recv)
}

func TestTCPWallStamping(t *testing.T) {
	n, err := NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	checkWallStamping(t, "tcp", n.Endpoint(0).Send, n.Endpoint(1).Recv)
}

func TestFaultyWallStamping(t *testing.T) {
	n := NewFaultyNetwork(NewChannelNetwork(2, 8), FaultConfig{Seed: 1})
	defer n.Close()
	checkWallStamping(t, "faulty", n.Endpoint(0).Send, n.Endpoint(1).Recv)
}

// TestFaultyDupKeepsWall checks that a duplicated packet's copy keeps
// the original wall send time, so traced transit measures the real
// delivery schedule of each copy.
func TestFaultyDupKeepsWall(t *testing.T) {
	n := NewFaultyNetwork(NewChannelNetwork(2, 8), FaultConfig{
		Seed:       7,
		FaultRates: FaultRates{Dup: 1.0},
	})
	defer n.Close()
	sent := time.Now().UnixNano()
	if err := n.Endpoint(0).Send(Packet{To: 1, Wall: sent, Payload: payload("dup")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		p, ok := n.Endpoint(1).Recv()
		if !ok {
			t.Fatalf("recv %d failed", i)
		}
		if p.Wall != sent {
			t.Errorf("copy %d wall = %d, want %d", i, p.Wall, sent)
		}
		wire.PutBuf(p.Payload)
	}
	if got := n.Stats.Duplicated.Load(); got != 1 {
		t.Fatalf("duplicated = %d, want 1", got)
	}
}
