package wire

import "fmt"

// Batch container framing.
//
// A batch frame coalesces several small sealed frames into one physical
// network frame: [msgBatch tag] [count i32] then per entry a virtual
// send timestamp, a wall-clock send timestamp (zero when untraced) and
// the length-prefixed sealed sub-frame. The container is sealed again
// by the sender, so the wire carries an outer CRC over the whole batch
// and each sub-frame keeps its own seal — a receiver validates both,
// and a sub-frame extracted from a batch is indistinguishable from one
// that traveled alone. The tag byte itself lives at the RMI layer next
// to msgCall/msgReply; this file owns the entry layout and its
// hardened reader.

const (
	// MaxBatchEntries caps the declared sub-frame count of one batch.
	// An honest batcher flushes long before this; a hostile count past
	// it is rejected before any entry is read.
	MaxBatchEntries = 1024

	// batchEntryMinBytes is the smallest possible encoded entry: two
	// 8-byte timestamps plus a 4-byte length prefix covering a sealed
	// sub-frame, which is itself at least ChecksumSize+1 bytes.
	batchEntryMinBytes = 8 + 8 + 4 + ChecksumSize + 1
)

// BatchEntry is one coalesced frame: the virtual and wall-clock send
// timestamps its packet would have carried, and the sealed sub-frame.
// Frame is a view into the container's buffer — valid only until the
// container is recycled.
type BatchEntry struct {
	TS    int64
	Wall  int64
	Frame []byte
}

// AppendBatchEntry encodes one entry onto a batch under construction.
func AppendBatchEntry(m *Message, ts, wall int64, frame []byte) {
	m.AppendInt64(ts)
	m.AppendInt64(wall)
	m.AppendBytes(frame)
}

// CheckBatchCount validates a batch's declared entry count against the
// cap and the bytes actually present, before anything is allocated or
// dispatched. Rejections wrap ErrMalformedFrame.
func CheckBatchCount(m *Message, count int) error {
	if count <= 0 || count > MaxBatchEntries {
		return fmt.Errorf("%w: batch entry count %d (cap %d)", ErrMalformedFrame, count, MaxBatchEntries)
	}
	if count*batchEntryMinBytes > m.Remaining() {
		return fmt.Errorf("%w: batch declares %d entries but only %d payload bytes remain",
			ErrMalformedFrame, count, m.Remaining())
	}
	return nil
}

// ReadBatchEntry decodes the next entry as a zero-copy view. A short or
// empty sub-frame is a malformed container.
func ReadBatchEntry(m *Message) (BatchEntry, error) {
	e := BatchEntry{TS: m.ReadInt64(), Wall: m.ReadInt64()}
	e.Frame = m.ReadBytesView()
	if err := m.Err(); err != nil {
		return BatchEntry{}, err
	}
	if len(e.Frame) <= ChecksumSize {
		return BatchEntry{}, fmt.Errorf("%w: batch sub-frame of %d bytes", ErrMalformedFrame, len(e.Frame))
	}
	return e, nil
}
