package wire

import (
	"errors"
	"testing"
)

// sealedFrame builds a minimal valid sealed sub-frame for batch tests.
func sealedFrame(t *testing.T, body []byte) []byte {
	t.Helper()
	m := NewMessage(len(body) + ChecksumSize)
	for _, b := range body {
		m.AppendByte(b)
	}
	m.SealFrame()
	frame := append([]byte(nil), m.Bytes()...)
	return frame
}

func TestBatchEntryRoundTrip(t *testing.T) {
	frames := [][]byte{
		sealedFrame(t, []byte{1, 2, 3}),
		sealedFrame(t, []byte{9}),
		sealedFrame(t, []byte{0, 0, 0, 0, 7}),
	}
	m := NewMessage(256)
	for i, f := range frames {
		AppendBatchEntry(m, int64(100+i), int64(200+i), f)
	}
	m.Rewind()
	for i, f := range frames {
		e, err := ReadBatchEntry(m)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if e.TS != int64(100+i) || e.Wall != int64(200+i) {
			t.Fatalf("entry %d: ts=%d wall=%d", i, e.TS, e.Wall)
		}
		if string(e.Frame) != string(f) {
			t.Fatalf("entry %d: frame mismatch", i)
		}
		if payload, err := Unseal(e.Frame); err != nil {
			t.Fatalf("entry %d: sub-frame lost its seal: %v", i, err)
		} else if len(payload) == 0 {
			t.Fatalf("entry %d: empty payload", i)
		}
	}
	if m.Remaining() != 0 {
		t.Fatalf("%d bytes left after reading all entries", m.Remaining())
	}
}

func TestCheckBatchCountRejects(t *testing.T) {
	m := NewMessage(64)
	AppendBatchEntry(m, 1, 0, sealedFrame(t, []byte{1, 2, 3}))
	m.Rewind()
	for _, count := range []int{0, -1, MaxBatchEntries + 1} {
		if err := CheckBatchCount(m, count); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("count %d: err = %v, want ErrMalformedFrame", count, err)
		}
	}
	// A count the bytes on hand cannot possibly satisfy.
	if err := CheckBatchCount(m, 3); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("overdeclared count: err = %v, want ErrMalformedFrame", err)
	}
	if err := CheckBatchCount(m, 1); err != nil {
		t.Errorf("valid count rejected: %v", err)
	}
}

func TestReadBatchEntryRejectsTruncatedAndShort(t *testing.T) {
	// Truncated container: entry header present, sub-frame bytes cut.
	m := NewMessage(64)
	m.AppendInt64(1)
	m.AppendInt64(2)
	m.AppendInt32(100) // declares 100 frame bytes; none follow
	m.Rewind()
	if _, err := ReadBatchEntry(m); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("truncated entry: err = %v, want ErrMalformedFrame", err)
	}

	// Sub-frame too short to even hold a checksum: structurally invalid
	// regardless of content.
	m2 := NewMessage(64)
	AppendBatchEntry(m2, 1, 2, make([]byte, ChecksumSize))
	m2.Rewind()
	if _, err := ReadBatchEntry(m2); !errors.Is(err, ErrMalformedFrame) {
		t.Errorf("short sub-frame: err = %v, want ErrMalformedFrame", err)
	}
}
