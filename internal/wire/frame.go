package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameSize bounds a single framed message (64 MiB), protecting
// stream transports from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// ChecksumSize is the length of the payload checksum trailer appended
// by Seal.
const ChecksumSize = 4

// ErrChecksum is reported by Unseal when a payload fails verification —
// the frame was corrupted in flight and must be discarded.
var ErrChecksum = errors.New("wire: payload checksum mismatch")

// ErrMalformedFrame is reported when a frame passes its checksum but
// the content violates the protocol: declared lengths exceeding the
// actual payload, implausible table or entry counts, unknown class
// IDs, nesting bombs, or decode work past the per-frame allocation
// budget. A checksum failure (ErrChecksum) means the interconnect
// corrupted honest bytes and a retransmit will recover; a malformed
// frame means the SENDER put hostile or version-skewed bytes on the
// wire, so retransmits are pointless and callers must be able to tell
// the two apart (errors.Is). Every decode-layer rejection wraps this
// sentinel.
var ErrMalformedFrame = errors.New("wire: malformed frame")

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// current CPUs.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Seal appends a CRC32-C trailer over payload and returns the sealed
// buffer (which may alias payload's backing array). Every RMI frame is
// sealed before it enters the transport so that corruption injected by
// a lossy interconnect is detected instead of deserialized.
func Seal(payload []byte) []byte {
	sum := crc32.Checksum(payload, crcTable)
	return binary.LittleEndian.AppendUint32(payload, sum)
}

// SealFrame seals the message in place: the CRC32-C trailer is
// appended to the message's own buffer (which a pooled message has
// spare capacity for after its first use, so no frame copy happens in
// steady state) and the sealed frame is returned. After sealing, the
// message must not be appended to again; the usual sender sequence is
// SealFrame, Detach, Endpoint.Send.
func (m *Message) SealFrame() []byte {
	sum := crc32.Checksum(m.buf, crcTable)
	m.buf = binary.LittleEndian.AppendUint32(m.buf, sum)
	return m.buf
}

// Unseal verifies a sealed payload's trailer and returns the payload
// with the trailer stripped. It returns ErrChecksum on mismatch and on
// payloads too short to carry a trailer.
func Unseal(sealed []byte) ([]byte, error) {
	if len(sealed) < ChecksumSize {
		return nil, fmt.Errorf("%w: %d-byte frame too short", ErrChecksum, len(sealed))
	}
	body := sealed[:len(sealed)-ChecksumSize]
	want := binary.LittleEndian.Uint32(sealed[len(body):])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("%w: got %08x want %08x", ErrChecksum, got, want)
	}
	return body, nil
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
