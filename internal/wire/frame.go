package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single framed message (64 MiB), protecting
// stream transports from corrupt length prefixes.
const MaxFrameSize = 64 << 20

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
