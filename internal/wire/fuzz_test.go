package wire

import (
	"errors"
	"testing"
)

// FuzzDecodeHello drives the handshake decoder with arbitrary bytes.
// The properties under test are the hardening contract: no panic on any
// input, every rejection is a typed ErrMalformedFrame, and every
// accepted HELLO re-encodes to bytes that decode to the same value
// (the decoder accepts nothing the encoder cannot produce).
func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello(&Hello{Version: ProtocolVersion, PlanVersion: 1, Node: 0}))
	f.Add(EncodeHello(&Hello{
		Version: ProtocolVersion, PlanVersion: 2, Node: 1,
		Entries: []HelloEntry{{Name: "Node", FP: 0x1234}, {Name: "double[]", FP: 0x5678}},
	}))
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x4D, 0x48, 0x31})
	corrupted := EncodeHello(&Hello{Version: 1, Entries: []HelloEntry{{Name: "x", FP: 9}}})
	corrupted[len(corrupted)-3] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			if !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("rejection %v is not ErrMalformedFrame", err)
			}
			return
		}
		re, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("accepted hello does not re-decode: %v", err)
		}
		if re.Version != h.Version || re.PlanVersion != h.PlanVersion ||
			re.Node != h.Node || len(re.Entries) != len(h.Entries) {
			t.Fatalf("re-decode mismatch: %+v != %+v", re, h)
		}
	})
}
