package wire

import (
	"encoding/binary"
	"fmt"
)

// HELLO: the connection-scoped version handshake.
//
// The paper's model compiles both ends of every link from the same
// whole program, so sender and receiver trivially agree on every
// serialization plan. A rolling cluster breaks that assumption: two
// nodes may run binaries compiled from different program versions
// whose site plans lay fields out differently. The HELLO frame is how
// a link discovers this before any payload is decoded with the wrong
// plan: each side states its protocol version and a fingerprint per
// class (a hash of the layout its compiled plans depend on, see
// serial.ClassFingerprint). Classes whose fingerprints disagree are
// demoted to the self-describing class-level encoding for the life of
// the link (serial.Negotiate); everything else keeps the compiled
// fast path.
//
// HELLO is itself wire input from an untrusted peer, so DecodeHello is
// written to the same standard as the payload decoder: every declared
// length is checked against the bytes actually present, entry counts
// are capped, and every rejection wraps ErrMalformedFrame. No panic,
// no unbounded allocation.

const (
	// ProtocolVersion is the wire protocol generation this build
	// speaks. A link runs at min(local, remote); today only version 1
	// exists, so a peer advertising 0 (or a mangled preamble) is
	// rejected rather than negotiated with.
	ProtocolVersion = 1

	// helloMagic guards against decoding a non-HELLO frame as a
	// handshake ("CMH1" little-endian).
	helloMagic = 0x31484D43

	// MaxHelloEntries caps the per-class fingerprint table. The
	// registry of a real program holds tens of classes; 4096 is far
	// above any legitimate program and far below an allocation attack.
	MaxHelloEntries = 4096

	// maxHelloName caps a single class name in a HELLO entry.
	maxHelloName = 256

	// helloEntryMinBytes is the smallest possible encoded entry: a
	// 4-byte name length (name may not be empty, so ≥1 name byte) plus
	// an 8-byte fingerprint. Used to bound the declared entry count by
	// the bytes actually present before anything is allocated.
	helloEntryMinBytes = 4 + 1 + 8
)

// Link capability bits, advertised in Hello.Caps. A link runs with the
// intersection of both sides' capability sets, so an optional protocol
// feature (promise pipelining, one-way calls, frame batching) is used
// on a link only when both peers advertise it; a peer that omits a bit
// — an older build, or a test masking capabilities — demotes the
// feature on that link without affecting correctness.
const (
	// CapPipelining: the peer maintains a per-link promise table and
	// accepts calls carrying promise-handle sections (callFlagPromised
	// / callFlagPipelined at the RMI layer).
	CapPipelining uint32 = 1 << 0
	// CapOneWay: the peer honors the one-way call flag (executes the
	// method and suppresses the reply frame).
	CapOneWay uint32 = 1 << 1
	// CapBatching: the peer decodes msgBatch container frames.
	CapBatching uint32 = 1 << 2
	// CapTracing: the peer decodes the optional trace-context field in
	// call frames (callFlagTraceCtx at the RMI layer). A link to a peer
	// without this bit drops the context — the call still runs, its
	// downstream spans just fall out of the trace — instead of sending
	// a frame the peer would reject as malformed.
	CapTracing uint32 = 1 << 3

	// LocalCaps is the capability set this build advertises.
	LocalCaps = CapPipelining | CapOneWay | CapBatching | CapTracing
)

// HelloEntry is one class fingerprint: the class name and the hash of
// the plan layout the sender compiled for it.
type HelloEntry struct {
	Name string
	FP   uint64
}

// Hello is the handshake either side of a link sends before payload
// traffic. Entries are sorted by class name (the registry's canonical
// order) so two honest peers produce byte-identical tables for
// identical programs.
type Hello struct {
	Version     int32  // wire protocol generation (ProtocolVersion)
	PlanVersion int32  // sender's plan generation, bumped on recompile
	Node        int32  // sender's node ID, for observability
	Caps        uint32 // optional-feature bits (Cap*), intersected per link
	Entries     []HelloEntry
}

// EncodeHello serializes h into a standalone (unsealed) HELLO frame.
func EncodeHello(h *Hello) []byte {
	m := NewMessage(24 + 24*len(h.Entries))
	m.AppendInt32(helloMagic)
	m.AppendInt32(h.Version)
	m.AppendInt32(h.PlanVersion)
	m.AppendInt32(h.Node)
	m.AppendInt32(int32(h.Caps))
	m.AppendInt32(int32(len(h.Entries)))
	for _, e := range h.Entries {
		m.AppendString(e.Name)
		m.AppendInt64(int64(e.FP))
	}
	return m.Bytes()
}

// DecodeHello parses and validates a HELLO frame. Every rejection —
// wrong magic, unsupported version, implausible entry count, oversized
// or empty names, short payloads, trailing garbage — wraps
// ErrMalformedFrame.
func DecodeHello(b []byte) (*Hello, error) {
	m := FromBytes(b)
	if magic := m.ReadInt32(); m.Err() == nil && magic != helloMagic {
		return nil, fmt.Errorf("%w: hello magic %08x, want %08x", ErrMalformedFrame, uint32(magic), uint32(helloMagic))
	}
	h := &Hello{
		Version:     m.ReadInt32(),
		PlanVersion: m.ReadInt32(),
		Node:        m.ReadInt32(),
	}
	h.Caps = uint32(m.ReadInt32())
	n := int(m.ReadInt32())
	if err := m.Err(); err != nil {
		return nil, err
	}
	if h.Version < 1 {
		return nil, fmt.Errorf("%w: hello protocol version %d", ErrMalformedFrame, h.Version)
	}
	if n < 0 || n > MaxHelloEntries {
		return nil, fmt.Errorf("%w: hello entry count %d (cap %d)", ErrMalformedFrame, n, MaxHelloEntries)
	}
	// Bound the table allocation by the bytes actually present before
	// making it: n entries need at least n*helloEntryMinBytes more.
	if n*helloEntryMinBytes > m.Remaining() {
		return nil, fmt.Errorf("%w: hello declares %d entries but only %d payload bytes remain",
			ErrMalformedFrame, n, m.Remaining())
	}
	h.Entries = make([]HelloEntry, 0, n)
	for i := 0; i < n; i++ {
		name := m.ReadString()
		fp := uint64(m.ReadInt64())
		if err := m.Err(); err != nil {
			return nil, err
		}
		if len(name) == 0 || len(name) > maxHelloName {
			return nil, fmt.Errorf("%w: hello entry %d name length %d", ErrMalformedFrame, i, len(name))
		}
		h.Entries = append(h.Entries, HelloEntry{Name: name, FP: fp})
	}
	if m.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after hello", ErrMalformedFrame, m.Remaining())
	}
	return h, nil
}

// --- stream preamble ------------------------------------------------

// PreambleSize is the length of the fixed preamble a stream transport
// (TCP) writes immediately after connecting, before any framed
// traffic: the HELLO magic plus the sender's protocol version. It lets
// a receiver reject a wrong-protocol or wrong-version peer from the
// first six bytes instead of misparsing its frames.
const PreambleSize = 6

// Preamble returns the connection preamble for this build.
func Preamble() [PreambleSize]byte {
	var p [PreambleSize]byte
	binary.LittleEndian.PutUint32(p[:4], helloMagic)
	binary.LittleEndian.PutUint16(p[4:], ProtocolVersion)
	return p
}

// CheckPreamble validates a received connection preamble. Rejections
// wrap ErrMalformedFrame.
func CheckPreamble(p []byte) error {
	if len(p) != PreambleSize {
		return fmt.Errorf("%w: %d-byte preamble", ErrMalformedFrame, len(p))
	}
	if magic := binary.LittleEndian.Uint32(p[:4]); magic != helloMagic {
		return fmt.Errorf("%w: preamble magic %08x", ErrMalformedFrame, magic)
	}
	if v := binary.LittleEndian.Uint16(p[4:]); v < 1 {
		return fmt.Errorf("%w: preamble protocol version %d", ErrMalformedFrame, v)
	}
	return nil
}
