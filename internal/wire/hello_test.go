package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func sampleHello() *Hello {
	return &Hello{
		Version:     ProtocolVersion,
		PlanVersion: 7,
		Node:        3,
		Caps:        LocalCaps,
		Entries: []HelloEntry{
			{Name: "Base", FP: 0xd10c6d4e7862dc7e},
			{Name: "Derived1", FP: 0xfc2caa8666b72dcf},
			{Name: "double[]", FP: 0x6314424c1538ffe1},
		},
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := sampleHello()
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != h.Version || got.PlanVersion != h.PlanVersion || got.Node != h.Node || got.Caps != h.Caps {
		t.Fatalf("header round trip: %+v != %+v", got, h)
	}
	if len(got.Entries) != len(h.Entries) {
		t.Fatalf("%d entries, want %d", len(got.Entries), len(h.Entries))
	}
	for i, e := range h.Entries {
		if got.Entries[i] != e {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], e)
		}
	}
}

func TestHelloEmptyTableRoundTrips(t *testing.T) {
	h := &Hello{Version: ProtocolVersion, PlanVersion: 1, Node: 0}
	got, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 {
		t.Fatalf("entries = %+v, want none", got.Entries)
	}
}

// TestHelloRejections drives DecodeHello with every malformation class
// the hardening design enumerates; each must produce a typed
// ErrMalformedFrame, never a panic, never a partial success.
func TestHelloRejections(t *testing.T) {
	valid := EncodeHello(sampleHello())
	le := binary.LittleEndian

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated magic", valid[:3]},
		{"bad magic", func() []byte {
			b := append([]byte(nil), valid...)
			le.PutUint32(b, 0xdeadbeef)
			return b
		}()},
		{"version zero", func() []byte {
			b := append([]byte(nil), valid...)
			le.PutUint32(b[4:], 0)
			return b
		}()},
		{"negative version", func() []byte {
			b := append([]byte(nil), valid...)
			le.PutUint32(b[4:], 0x80000001)
			return b
		}()},
		{"truncated header", valid[:10]},
		{"negative count", func() []byte {
			b := append([]byte(nil), valid...)
			le.PutUint32(b[20:], 0xffffffff)
			return b
		}()},
		{"count over cap", func() []byte {
			b := append([]byte(nil), valid...)
			le.PutUint32(b[20:], MaxHelloEntries+1)
			return b
		}()},
		// The allocation attack: a header-only frame declaring a full
		// table. The count×minBytes bound must reject it before the
		// table is allocated.
		{"count exceeds payload", func() []byte {
			b := append([]byte(nil), valid[:24]...)
			le.PutUint32(b[20:], MaxHelloEntries)
			return b
		}()},
		{"truncated mid-entry", valid[:len(valid)-5]},
		{"empty name", EncodeHello(&Hello{Version: 1, Entries: []HelloEntry{{Name: "", FP: 1}}})},
		{"oversized name", EncodeHello(&Hello{Version: 1, Entries: []HelloEntry{
			{Name: strings.Repeat("x", maxHelloName+1), FP: 1}}})},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xcc)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := DecodeHello(tc.b)
			if err == nil {
				t.Fatalf("decoded %+v from malformed input", h)
			}
			if !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("error %v is not ErrMalformedFrame", err)
			}
		})
	}
}

// TestHelloAllocationBound pins the adversarial-allocation property: a
// tiny frame declaring a huge table must be rejected with O(1)
// allocations, not after materializing the declared size.
func TestHelloAllocationBound(t *testing.T) {
	b := EncodeHello(sampleHello())[:24]
	binary.LittleEndian.PutUint32(b[20:], MaxHelloEntries)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeHello(b); err == nil {
			t.Fatal("hostile hello decoded")
		}
	})
	if allocs > 8 {
		t.Fatalf("rejecting a 20-byte hostile hello cost %.0f allocs", allocs)
	}
}

func TestPreamble(t *testing.T) {
	p := Preamble()
	if err := CheckPreamble(p[:]); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"short":     p[:4],
		"long":      append(append([]byte(nil), p[:]...), 0),
		"bad magic": {0, 1, 2, 3, 1, 0},
		"version 0": {0x43, 0x4D, 0x48, 0x31, 0, 0},
	} {
		if err := CheckPreamble(bad); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("%s: err = %v, want ErrMalformedFrame", name, err)
		}
	}
}

// TestShortMessageIsMalformed pins the error taxonomy: reading past the
// end of a message is a malformed-frame condition (sender violation),
// and existing errors.Is(ErrShortMessage) checks keep working.
func TestShortMessageIsMalformed(t *testing.T) {
	m := FromBytes([]byte{1})
	m.ReadInt64()
	if err := m.Err(); !errors.Is(err, ErrMalformedFrame) || !errors.Is(err, ErrShortMessage) {
		t.Fatalf("short read error %v must wrap both sentinels", err)
	}
}

func TestMessageFailFirstWins(t *testing.T) {
	m := FromBytes([]byte{1, 2, 3})
	first := errors.New("first")
	m.Fail(first)
	m.Fail(errors.New("second"))
	if m.Err() != first {
		t.Fatalf("Err() = %v, want the first failure", m.Err())
	}
}
