package wire

import (
	"sync"
	"testing"
)

// The frame pool's debug gauge must balance: every buffer handed out
// by GetBuf is eventually returned by exactly one PutBuf. A growing
// Gets-Puts gap is a frame leak — the gauge exists so /metrics and
// this test can catch one.

func TestPoolStatsBalance(t *testing.T) {
	before := Stats()
	const rounds = 1000
	for i := 0; i < rounds; i++ {
		b := GetBuf(64)
		for j := range b {
			b[j] = byte(j)
		}
		PutBuf(b)
	}
	d := Stats()
	if gets := d.Gets - before.Gets; gets != rounds {
		t.Fatalf("gets advanced by %d, want %d", gets, rounds)
	}
	if puts := d.Puts - before.Puts; puts != rounds {
		t.Fatalf("puts advanced by %d, want %d", puts, rounds)
	}
	if out := d.Outstanding - before.Outstanding; out != 0 {
		t.Fatalf("outstanding drifted by %d after balanced traffic", out)
	}
}

func TestPoolStatsCountsNilAndOversized(t *testing.T) {
	before := Stats()
	PutBuf(nil) // no ownership returned: not a put
	if d := Stats().Puts - before.Puts; d != 0 {
		t.Fatalf("nil PutBuf counted as %d puts", d)
	}
	// An oversized buffer is dropped to the GC but its ownership WAS
	// returned, so the gauge must still balance.
	b := make([]byte, maxPooledBufCap+1)
	PutBuf(b)
	if d := Stats().Puts - before.Puts; d != 1 {
		t.Fatalf("oversized PutBuf counted as %d puts, want 1", d)
	}
}

func TestPoolStatsLeakDetection(t *testing.T) {
	// Deliberately leak: buffers obtained and never returned move the
	// gauge — the property the leak check in obs relies on.
	before := Stats()
	for i := 0; i < 10; i++ {
		_ = GetBuf(32)
	}
	if out := Stats().Outstanding - before.Outstanding; out != 10 {
		t.Fatalf("outstanding moved by %d after leaking 10 buffers", out)
	}
	// Restore balance so other tests observing the gauge see quiescence.
	for i := 0; i < 10; i++ {
		PutBuf(make([]byte, 0, 32))
	}
}

func TestPoolStatsConcurrent(t *testing.T) {
	before := Stats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				PutBuf(GetBuf(128))
			}
		}()
	}
	wg.Wait()
	d := Stats()
	if out := d.Outstanding - before.Outstanding; out != 0 {
		t.Fatalf("outstanding drifted by %d under concurrency", out)
	}
	if gets := d.Gets - before.Gets; gets != 8*500 {
		t.Fatalf("gets advanced by %d, want %d", gets, 8*500)
	}
}
