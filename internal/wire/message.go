// Package wire implements the lightweight message encoding of the RMI
// protocol: little-endian buffers with the append_int /
// append_double_array style API that the paper's generated marshalers
// use (Figure 13), plus length-prefixed framing for stream transports.
//
// The encoding carries no per-object type information by itself; the
// serialization layer decides whether to write class IDs ("class" mode)
// or rely on call-site knowledge ("site" mode).
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// ErrShortMessage is reported when a read runs past the end of the
// message payload: a declared length or field sequence promised more
// bytes than the frame actually carries. That is by definition a
// protocol violation by the sender, so it wraps ErrMalformedFrame —
// errors.Is(err, ErrMalformedFrame) matches every short read.
var ErrShortMessage = fmt.Errorf("%w: read past end of message", ErrMalformedFrame)

// Message is a growable byte buffer written by marshalers and read by
// unmarshalers. The zero value is an empty message ready for appending.
type Message struct {
	buf []byte
	pos int
	err error
}

// NewMessage returns a message with the given initial capacity.
func NewMessage(capacity int) *Message {
	return &Message{buf: make([]byte, 0, capacity)}
}

// FromBytes wraps a received payload for reading.
func FromBytes(b []byte) *Message {
	return &Message{buf: b}
}

// Bytes returns the encoded payload.
func (m *Message) Bytes() []byte { return m.buf }

// Len returns the number of payload bytes.
func (m *Message) Len() int { return len(m.buf) }

// Remaining returns the number of unread bytes.
func (m *Message) Remaining() int { return len(m.buf) - m.pos }

// Err returns the sticky read error, if any read ran short.
func (m *Message) Err() error { return m.err }

// Fail poisons the message with err (first failure wins, like a short
// read). Decoders use it to reject a frame from code that cannot
// return an error directly — e.g. the allocation-budget and
// handle-table caps deep in the deserializer: after Fail every further
// read returns zero values, so declared lengths collapse to zero and
// no more memory is committed, and the top-level decode loop surfaces
// err through Err.
func (m *Message) Fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Reset clears the message for reuse.
func (m *Message) Reset() {
	m.buf = m.buf[:0]
	m.pos = 0
	m.err = nil
}

// Rewind moves the read cursor back to the start of the payload.
func (m *Message) Rewind() {
	m.pos = 0
	m.err = nil
}

// ResetTo repoints the message at b for reading without allocating —
// the receive-loop alternative to FromBytes. The message does not take
// ownership of b; callers that pool their frame buffers must not
// release b while reads (or views, see ReadBytesView) are outstanding.
func (m *Message) ResetTo(b []byte) {
	m.buf = b
	m.pos = 0
	m.err = nil
}

// ensure appends n uninitialized bytes in one grow step and returns
// the freshly appended region for the caller to fill.
func (m *Message) ensure(n int) []byte {
	off := len(m.buf)
	if cap(m.buf)-off < n {
		grown := make([]byte, off, growCap(off+n, cap(m.buf)))
		copy(grown, m.buf)
		m.buf = grown
	}
	m.buf = m.buf[:off+n]
	return m.buf[off:]
}

// growCap doubles capacity until it covers need, so repeated bulk
// appends stay amortized-constant like the builtin append.
func growCap(need, cur int) int {
	c := cur * 2
	if c < need {
		c = need
	}
	if c < 64 {
		c = 64
	}
	return c
}

// --- appends -------------------------------------------------------

// AppendByte appends a single byte.
func (m *Message) AppendByte(b byte) { m.buf = append(m.buf, b) }

// AppendBool appends a boolean as one byte.
func (m *Message) AppendBool(b bool) {
	if b {
		m.buf = append(m.buf, 1)
	} else {
		m.buf = append(m.buf, 0)
	}
}

// AppendInt32 appends a little-endian int32.
func (m *Message) AppendInt32(v int32) {
	m.buf = binary.LittleEndian.AppendUint32(m.buf, uint32(v))
}

// AppendInt64 appends a little-endian int64.
func (m *Message) AppendInt64(v int64) {
	m.buf = binary.LittleEndian.AppendUint64(m.buf, uint64(v))
}

// AppendFloat64 appends an IEEE-754 double.
func (m *Message) AppendFloat64(v float64) {
	m.buf = binary.LittleEndian.AppendUint64(m.buf, math.Float64bits(v))
}

// AppendString appends a length-prefixed UTF-8 string.
func (m *Message) AppendString(s string) {
	m.AppendInt32(int32(len(s)))
	m.buf = append(m.buf, s...)
}

// AppendBytes appends a length-prefixed byte slice.
func (m *Message) AppendBytes(b []byte) {
	m.AppendInt32(int32(len(b)))
	m.buf = append(m.buf, b...)
}

// AppendFloat64Slice appends a length-prefixed double array, the bulk
// transfer primitive of the paper's array marshaler
// (append_double_array in Figure 13). The buffer grows at most once —
// length prefix plus payload in a single reservation — and the encode
// loop is a straight PutUint64 sweep over the reserved region.
func (m *Message) AppendFloat64Slice(vs []float64) {
	dst := m.ensure(4 + 8*len(vs))
	binary.LittleEndian.PutUint32(dst, uint32(int32(len(vs))))
	dst = dst[4:]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(v))
	}
}

// AppendInt64Slice appends a length-prefixed int64 array (single grow,
// see AppendFloat64Slice).
func (m *Message) AppendInt64Slice(vs []int64) {
	dst := m.ensure(4 + 8*len(vs))
	binary.LittleEndian.PutUint32(dst, uint32(int32(len(vs))))
	dst = dst[4:]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(dst[8*i:], uint64(v))
	}
}

// --- reads ---------------------------------------------------------

func (m *Message) need(n int) bool {
	if m.err != nil {
		return false
	}
	if m.pos+n > len(m.buf) {
		m.err = fmt.Errorf("%w: need %d bytes at offset %d of %d",
			ErrShortMessage, n, m.pos, len(m.buf))
		return false
	}
	return true
}

// ReadU8 reads one byte.
func (m *Message) ReadU8() byte {
	if !m.need(1) {
		return 0
	}
	b := m.buf[m.pos]
	m.pos++
	return b
}

// ReadBool reads one boolean byte.
func (m *Message) ReadBool() bool { return m.ReadU8() != 0 }

// ReadInt32 reads a little-endian int32.
func (m *Message) ReadInt32() int32 {
	if !m.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(m.buf[m.pos:])
	m.pos += 4
	return int32(v)
}

// ReadInt64 reads a little-endian int64.
func (m *Message) ReadInt64() int64 {
	if !m.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(m.buf[m.pos:])
	m.pos += 8
	return int64(v)
}

// ReadFloat64 reads an IEEE-754 double.
func (m *Message) ReadFloat64() float64 {
	if !m.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(m.buf[m.pos:])
	m.pos += 8
	return math.Float64frombits(v)
}

// ReadString reads a length-prefixed string.
func (m *Message) ReadString() string {
	n := int(m.ReadInt32())
	if n < 0 || !m.need(n) {
		if m.err == nil {
			m.err = fmt.Errorf("%w: negative string length %d", ErrShortMessage, n)
		}
		return ""
	}
	s := string(m.buf[m.pos : m.pos+n])
	m.pos += n
	return s
}

// ReadBytes reads a length-prefixed byte slice (copied out of the
// message buffer, so the result is safe to keep after the frame is
// released).
func (m *Message) ReadBytes() []byte {
	v := m.ReadBytesView()
	if v == nil {
		return nil
	}
	b := make([]byte, len(v))
	copy(b, v)
	return b
}

// ReadBytesView reads a length-prefixed byte slice as a zero-copy view
// into the message buffer. The view is valid only while the frame is
// alive: on pooled receive paths the buffer is recycled once the
// message has been dispatched, so callers must either finish with the
// view before then or copy it (ReadBytes). Use it on internal paths
// where the message provably outlives the read — e.g. deserializers
// that copy the payload into an existing object in place.
func (m *Message) ReadBytesView() []byte {
	n := int(m.ReadInt32())
	if n < 0 || !m.need(n) {
		if m.err == nil {
			m.err = fmt.Errorf("%w: negative bytes length %d", ErrShortMessage, n)
		}
		return nil
	}
	v := m.buf[m.pos : m.pos+n : m.pos+n]
	m.pos += n
	return v
}

// ReadFloat64SliceInto reads a length-prefixed double array into dst if
// dst has the right length (the reuse path of Figure 13); otherwise it
// allocates. It returns the slice holding the data and whether dst was
// reused.
func (m *Message) ReadFloat64SliceInto(dst []float64) (vs []float64, reused bool) {
	n := int(m.ReadInt32())
	if n < 0 || !m.need(8*n) {
		if m.err == nil {
			m.err = fmt.Errorf("%w: bad double[] length %d", ErrShortMessage, n)
		}
		return nil, false
	}
	if len(dst) == n {
		vs, reused = dst, true
	} else {
		vs = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.buf[m.pos:]))
		m.pos += 8
	}
	return vs, reused
}

// ReadFloat64Slice reads a length-prefixed double array.
func (m *Message) ReadFloat64Slice() []float64 {
	vs, _ := m.ReadFloat64SliceInto(nil)
	return vs
}

// ReadInt64SliceInto mirrors ReadFloat64SliceInto for int64 arrays.
func (m *Message) ReadInt64SliceInto(dst []int64) (vs []int64, reused bool) {
	n := int(m.ReadInt32())
	if n < 0 || !m.need(8*n) {
		if m.err == nil {
			m.err = fmt.Errorf("%w: bad int[] length %d", ErrShortMessage, n)
		}
		return nil, false
	}
	if len(dst) == n {
		vs, reused = dst, true
	} else {
		vs = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		vs[i] = int64(binary.LittleEndian.Uint64(m.buf[m.pos:]))
		m.pos += 8
	}
	return vs, reused
}

// ReadInt64Slice reads a length-prefixed int64 array.
func (m *Message) ReadInt64Slice() []int64 {
	vs, _ := m.ReadInt64SliceInto(nil)
	return vs
}
