package wire

import (
	"sync"
	"sync/atomic"
)

// Buffer and message pooling for the zero-allocation RMI hot path.
//
// Ownership protocol (see also transport.Endpoint and DESIGN.md §8):
//
//   - A writer obtains a pooled message with Get, fills it, seals it in
//     place (SealFrame) and Detaches the buffer into the transport; the
//     struct returns to the pool immediately, the buffer travels.
//   - Endpoint.Send takes ownership of the payload: after Send returns
//     the sender must neither read nor write the buffer. A sender that
//     needs the bytes again (retransmits) keeps its own private copy.
//   - The receiver of a packet owns the payload and returns it with
//     PutBuf once nothing references it anymore. Anything that must
//     outlive the frame (reply caches, user object graphs) is copied
//     out, never aliased.
//
// Two pools cooperate: msgPool recycles Message structs (a Detach
// returns the struct bufless; Get re-attaches a buffer), and bufFree
// recycles the byte buffers themselves. The buffer free list is a
// channel rather than a sync.Pool because a []byte stored in an
// interface box allocates its slice header on every Put — a channel of
// slices keeps Put/Get allocation free, which is the whole point.

const (
	// defaultBufCap sizes fresh buffers; pooled buffers keep whatever
	// capacity they grew to, so steady-state traffic stops growing.
	defaultBufCap = 512
	// maxPooledBufCap keeps one huge frame from pinning megabytes in
	// the free list forever.
	maxPooledBufCap = 1 << 20
	// bufFreeDepth bounds the free list; overflow falls to the GC.
	bufFreeDepth = 1024
)

var msgPool = sync.Pool{New: func() any { return new(Message) }}

var bufFree = make(chan []byte, bufFreeDepth)

// Pool debug gauges: lifetime GetBuf/PutBuf call counts. Their
// difference is the number of buffers currently owned by callers — a
// steadily growing gap means someone breaks the ownership protocol and
// leaks frames. The counters sit on separate cache lines so the two
// atomic adds per frame never contend with each other.
var (
	bufGets struct {
		atomic.Int64
		_ [56]byte
	}
	bufPuts struct {
		atomic.Int64
		_ [56]byte
	}
)

// PoolStats is a snapshot of the frame pool's debug gauges.
type PoolStats struct {
	Gets        int64 // lifetime GetBuf calls
	Puts        int64 // lifetime PutBuf calls (nil puts excluded)
	Outstanding int64 // Gets - Puts: buffers currently owned by callers
}

// Stats reports the frame pool's get/put balance. The gauge is
// surfaced on the /metrics endpoint and checked by the leak test;
// Outstanding can transiently exceed zero while frames are in flight,
// but must return to a small constant at quiescence.
func Stats() PoolStats {
	g, p := bufGets.Load(), bufPuts.Load()
	return PoolStats{Gets: g, Puts: p, Outstanding: g - p}
}

// GetBuf returns a buffer of length n from the frame pool (allocating
// only when the pool is empty or too small).
func GetBuf(n int) []byte {
	bufGets.Add(1)
	var b []byte
	select {
	case b = <-bufFree:
	default:
	}
	if cap(b) < n {
		c := n
		if c < defaultBufCap {
			c = defaultBufCap
		}
		b = make([]byte, n, c)
		return b
	}
	return b[:n]
}

// PutBuf returns a frame buffer to the pool. The caller must own b
// exclusively: no other goroutine may hold a view into it. PutBuf(nil)
// is a no-op, as is putting a buffer too large to retain.
func PutBuf(b []byte) {
	if b == nil {
		return
	}
	bufPuts.Add(1)
	if cap(b) > maxPooledBufCap {
		// Ownership was still returned — the buffer just falls to the GC
		// instead of the free list.
		return
	}
	select {
	case bufFree <- b[:0]:
	default:
	}
}

// Get returns a pooled message ready for appending. Release it with
// Release (buffer kept) or Detach (buffer handed off to the transport).
func Get() *Message {
	m := msgPool.Get().(*Message)
	if m.buf == nil {
		m.buf = GetBuf(0)
	}
	m.Reset()
	return m
}

// Release returns the message and its buffer to the pool. The caller
// must not touch m afterwards.
func (m *Message) Release() {
	m.Reset()
	msgPool.Put(m)
}

// Detach hands the caller ownership of the encoded buffer and returns
// the bufless struct to the message pool. The typical sender sequence
// is SealFrame, Detach, Endpoint.Send.
func (m *Message) Detach() []byte {
	b := m.buf
	m.buf = nil
	m.pos = 0
	m.err = nil
	msgPool.Put(m)
	return b
}

// GetReader returns a pooled message wrapping b for reading. It does
// NOT take ownership of b; ReleaseReader returns only the struct.
func GetReader(b []byte) *Message {
	m := msgPool.Get().(*Message)
	m.buf = b
	m.pos = 0
	m.err = nil
	return m
}

// ReleaseReader detaches the wrapped buffer (which the caller still
// owns) and returns the struct to the message pool.
func (m *Message) ReleaseReader() {
	m.buf = nil
	m.pos = 0
	m.err = nil
	msgPool.Put(m)
}
