package wire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// drainBufPool empties the package-global frame free list so a test
// can observe exactly what it puts in.
func drainBufPool() {
	for {
		select {
		case <-bufFree:
		default:
			return
		}
	}
}

func TestGetBufLenAndCap(t *testing.T) {
	b := GetBuf(10)
	if len(b) != 10 || cap(b) < 10 {
		t.Fatalf("GetBuf(10): len=%d cap=%d", len(b), cap(b))
	}
	z := GetBuf(0)
	if len(z) != 0 {
		t.Fatalf("GetBuf(0): len=%d", len(z))
	}
	big := GetBuf(defaultBufCap * 3)
	if len(big) != defaultBufCap*3 {
		t.Fatalf("GetBuf(big): len=%d", len(big))
	}
}

func TestPutBufRecyclesBacking(t *testing.T) {
	drainBufPool()
	b := make([]byte, 0, 7777) // recognizable capacity
	PutBuf(b)
	got := GetBuf(100)
	if cap(got) != 7777 {
		t.Fatalf("expected the recycled 7777-cap buffer, got cap=%d", cap(got))
	}
	// A pooled buffer smaller than the request must not be handed out
	// short: GetBuf falls back to a fresh allocation.
	drainBufPool()
	PutBuf(make([]byte, 0, 8))
	got = GetBuf(1000)
	if len(got) != 1000 || cap(got) < 1000 {
		t.Fatalf("undersized pool entry leaked through: len=%d cap=%d", len(got), cap(got))
	}
}

func TestPutBufRejectsNilAndOversized(t *testing.T) {
	drainBufPool()
	PutBuf(nil)
	PutBuf(make([]byte, 0, maxPooledBufCap+1))
	select {
	case b := <-bufFree:
		t.Fatalf("free list should be empty, holds cap=%d", cap(b))
	default:
	}
}

func TestGetSealDetachRoundTrip(t *testing.T) {
	m := Get()
	m.AppendByte(7)
	m.AppendInt64(-12345)
	m.AppendString("pooled")
	m.SealFrame()
	frame := m.Detach()

	payload, err := Unseal(frame)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	rd := GetReader(payload)
	if b := rd.ReadU8(); b != 7 {
		t.Fatalf("byte = %d", b)
	}
	if v := rd.ReadInt64(); v != -12345 {
		t.Fatalf("int64 = %d", v)
	}
	if s := rd.ReadString(); s != "pooled" {
		t.Fatalf("string = %q", s)
	}
	if rd.Err() != nil {
		t.Fatalf("read err: %v", rd.Err())
	}
	rd.ReleaseReader()
	PutBuf(frame)
}

func TestGetReaderDoesNotOwnBuffer(t *testing.T) {
	drainBufPool()
	b := []byte{1, 2, 3}
	rd := GetReader(b)
	if v := rd.ReadU8(); v != 1 {
		t.Fatalf("read %d", v)
	}
	rd.ReleaseReader()
	select {
	case got := <-bufFree:
		t.Fatalf("ReleaseReader put the foreign buffer (cap=%d) in the pool", cap(got))
	default:
	}
	if !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatal("reader mutated the wrapped buffer")
	}
}

// TestPoolHammer exercises the message and buffer pools from many
// goroutines at once; its real assertion is the race detector (the
// tier-1 gate runs the suite with -race). Each goroutine writes its
// own recognizable payload and checks it after a seal/detach/unseal
// trip through the shared pools.
func TestPoolHammer(t *testing.T) {
	const goroutines = 16
	const iters = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := Get()
				m.AppendInt64(int64(id))
				m.AppendInt64(int64(i))
				for k := 0; k < id+1; k++ {
					m.AppendByte(byte(id))
				}
				m.SealFrame()
				frame := m.Detach()

				payload, err := Unseal(frame)
				if err != nil {
					errs <- fmt.Errorf("g%d i%d: %v", id, i, err)
					return
				}
				rd := GetReader(payload)
				gotID, gotI := rd.ReadInt64(), rd.ReadInt64()
				for k := 0; k < id+1; k++ {
					if b := rd.ReadU8(); b != byte(id) {
						errs <- fmt.Errorf("g%d i%d: body byte %d", id, i, b)
						rd.ReleaseReader()
						return
					}
				}
				rd.ReleaseReader()
				PutBuf(frame)
				if gotID != int64(id) || gotI != int64(i) {
					errs <- fmt.Errorf("g%d i%d: header %d/%d", id, i, gotID, gotI)
					return
				}
				// Raw buffer churn alongside the message cycle.
				b := GetBuf(32 + id)
				b[0] = byte(id)
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
