package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		{},
		{0},
		[]byte("hello, checksum"),
		bytes.Repeat([]byte{0xAB}, 4096),
	} {
		sealed := Seal(append([]byte(nil), payload...))
		if len(sealed) != len(payload)+ChecksumSize {
			t.Fatalf("sealed %d bytes into %d, want +%d trailer", len(payload), len(sealed), ChecksumSize)
		}
		body, err := Unseal(sealed)
		if err != nil {
			t.Fatalf("Unseal(%d bytes): %v", len(payload), err)
		}
		if !bytes.Equal(body, payload) {
			t.Fatalf("roundtrip mangled payload: %q != %q", body, payload)
		}
	}
}

func TestUnsealDetectsEveryBitFlip(t *testing.T) {
	sealed := Seal([]byte("the quick brown fox"))
	for i := range sealed {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << bit
			if _, err := Unseal(mut); !errors.Is(err, ErrChecksum) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrChecksum", i, bit, err)
			}
		}
	}
}

func TestUnsealShortFrame(t *testing.T) {
	for _, n := range []int{0, 1, ChecksumSize - 1} {
		if _, err := Unseal(make([]byte, n)); !errors.Is(err, ErrChecksum) {
			t.Errorf("Unseal(%d bytes) = %v, want ErrChecksum", n, err)
		}
	}
	// Exactly the trailer is a valid seal of the empty payload.
	if body, err := Unseal(Seal(nil)); err != nil || len(body) != 0 {
		t.Errorf("Unseal(Seal(nil)) = %v, %v", body, err)
	}
}

func TestUnsealTruncatedAndExtended(t *testing.T) {
	sealed := Seal([]byte("truncate me"))
	if _, err := Unseal(sealed[:len(sealed)-1]); !errors.Is(err, ErrChecksum) {
		t.Errorf("truncated frame: %v, want ErrChecksum", err)
	}
	if _, err := Unseal(append(append([]byte(nil), sealed...), 0)); !errors.Is(err, ErrChecksum) {
		t.Errorf("extended frame: %v, want ErrChecksum", err)
	}
}
