package wire

import "fmt"

// Trace context: the distributed-tracing identity a traced call carries
// on the wire so every hop of a multi-node request chain lands in the
// same cross-node call tree.
//
// The context is deliberately tiny — 17 bytes — and optional: it is
// present in a call frame only when the callFlagTraceCtx flag bit is
// set, so the untraced hot path writes and reads nothing. When present
// it sits between the call header's argument count and the promise
// section, i.e. before anything variable-length, so a hardened decoder
// rejects a truncated context before any allocation happens.
//
// Like every other field decoded off the wire, the context is hostile
// input: a zero trace ID, an over-limit hop count, or a short read all
// reject with ErrMalformedFrame (fuzzed by FuzzTraceContext).

const (
	// MaxTraceHops caps the hop counter carried in a trace context. A
	// legitimate chain is bounded by the program's call depth (the
	// deepest bundled workload is a depth-8 pipelined chain); 64 is far
	// above any real topology and stops a hostile or looping peer from
	// growing the counter without bound.
	MaxTraceHops = 64

	// traceCtxBytes is the encoded size: trace ID (8) + parent span ID
	// (8) + hop count (1).
	traceCtxBytes = 8 + 8 + 1
)

// TraceContext is the per-request identity propagated hop to hop:
// which trace the call belongs to, which span caused it, and how many
// wire hops the trace has taken so far. The sampling decision is
// carried implicitly — an unsampled call simply has no context on the
// wire — so there is no separate sampling bit to keep consistent.
type TraceContext struct {
	// TraceID names the whole cross-node tree. Allocated once at the
	// root call site; never zero on the wire (zero is the in-memory
	// "not sampled" value).
	TraceID uint64
	// Parent is the span ID of the caller-side span that issued this
	// call — the edge the callee's span hangs off when the tree is
	// reassembled. Zero only for a root span's own context.
	Parent uint64
	// Hop counts wire hops from the root (root's first call is hop 0).
	// Bounded by MaxTraceHops.
	Hop uint8
}

// Valid reports whether the context can legally appear on the wire.
func (c TraceContext) Valid() bool {
	return c.TraceID != 0 && c.Hop <= MaxTraceHops
}

// AppendTraceContext writes c after the current end of m. The caller
// must have validated c (Valid); writing is infallible.
func AppendTraceContext(m *Message, c TraceContext) {
	m.AppendInt64(int64(c.TraceID))
	m.AppendInt64(int64(c.Parent))
	m.AppendByte(c.Hop)
}

// ReadTraceContext decodes a trace context at m's read position. Every
// rejection — truncated bytes, a zero trace ID, an over-limit hop
// count — wraps ErrMalformedFrame and leaves m failed so the enclosing
// frame decode aborts.
func ReadTraceContext(m *Message) (TraceContext, error) {
	var c TraceContext
	c.TraceID = uint64(m.ReadInt64())
	c.Parent = uint64(m.ReadInt64())
	c.Hop = m.ReadU8()
	if err := m.Err(); err != nil {
		return TraceContext{}, err
	}
	if c.TraceID == 0 {
		err := fmt.Errorf("%w: zero trace id in trace context", ErrMalformedFrame)
		m.Fail(err)
		return TraceContext{}, err
	}
	if c.Hop > MaxTraceHops {
		err := fmt.Errorf("%w: trace context hop count %d (cap %d)", ErrMalformedFrame, c.Hop, MaxTraceHops)
		m.Fail(err)
		return TraceContext{}, err
	}
	return c, nil
}
