package wire

import (
	"encoding/binary"
	"errors"
	"testing"
)

func encodeCtx(c TraceContext) []byte {
	m := NewMessage(traceCtxBytes)
	AppendTraceContext(m, c)
	return m.Bytes()
}

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: 1, Parent: 0, Hop: 0},
		{TraceID: 0xdeadbeefcafef00d, Parent: 7, Hop: 3},
		{TraceID: ^uint64(0), Parent: ^uint64(0), Hop: MaxTraceHops},
	}
	for _, c := range cases {
		m := FromBytes(encodeCtx(c))
		got, err := ReadTraceContext(m)
		if err != nil {
			t.Fatalf("ReadTraceContext(%+v): %v", c, err)
		}
		if got != c {
			t.Fatalf("round trip: got %+v want %+v", got, c)
		}
		if m.Remaining() != 0 {
			t.Fatalf("%d bytes left after context", m.Remaining())
		}
	}
}

func TestTraceContextRejections(t *testing.T) {
	valid := encodeCtx(TraceContext{TraceID: 42, Parent: 9, Hop: 1})
	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[:traceCtxBytes-1],
		"short id":  valid[:7],
		"zero id":   encodeCtx(TraceContext{TraceID: 0, Parent: 9, Hop: 1}),
		"hop cap":   encodeCtx(TraceContext{TraceID: 42, Parent: 9, Hop: MaxTraceHops + 1}),
	}
	for name, b := range cases {
		m := FromBytes(b)
		if _, err := ReadTraceContext(m); !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("%s: err = %v, want ErrMalformedFrame", name, err)
		}
		if m.Err() == nil {
			t.Errorf("%s: message not failed after rejection", name)
		}
	}
}

// TestTraceContextValid pins the wire-legality predicate the writer
// gates on: whatever Valid accepts, ReadTraceContext must accept too.
func TestTraceContextValid(t *testing.T) {
	if (TraceContext{}).Valid() {
		t.Error("zero context must not be wire-legal")
	}
	if !(TraceContext{TraceID: 1}).Valid() {
		t.Error("minimal root context must be wire-legal")
	}
	if (TraceContext{TraceID: 1, Hop: MaxTraceHops + 1}).Valid() {
		t.Error("over-limit hop must not be wire-legal")
	}
}

// FuzzTraceContext drives the trace-context decoder with arbitrary
// bytes: no panic on any input, every rejection is a typed
// ErrMalformedFrame, and every accepted context re-encodes to bytes
// that decode to the same value.
func FuzzTraceContext(f *testing.F) {
	f.Add(encodeCtx(TraceContext{TraceID: 1, Parent: 0, Hop: 0}))
	f.Add(encodeCtx(TraceContext{TraceID: 0x1122334455667788, Parent: 0x99aabbccddeeff00, Hop: MaxTraceHops}))
	// Hostile hop count, one past the cap.
	f.Add(encodeCtx(TraceContext{TraceID: 5, Parent: 6, Hop: MaxTraceHops + 1}))
	// Colliding IDs: trace ID == parent span ID (legal on the wire; the
	// tree assembler must cope, the decoder must not conflate them).
	f.Add(encodeCtx(TraceContext{TraceID: 77, Parent: 77, Hop: 2}))
	// Zero trace ID (the in-memory "unsampled" sentinel must never
	// decode).
	var zero [traceCtxBytes]byte
	f.Add(zero[:])
	// Truncated context.
	f.Add(encodeCtx(TraceContext{TraceID: 9, Parent: 1, Hop: 1})[:12])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := FromBytes(data)
		c, err := ReadTraceContext(m)
		if err != nil {
			if !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("rejection %v is not ErrMalformedFrame", err)
			}
			if m.Err() == nil {
				t.Fatal("message not failed after rejection")
			}
			return
		}
		if !c.Valid() {
			t.Fatalf("decoder accepted wire-illegal context %+v", c)
		}
		// The decoder reads exactly traceCtxBytes of a well-formed
		// prefix; verify against a manual decode of those bytes.
		if got := binary.LittleEndian.Uint64(data[:8]); got != c.TraceID {
			t.Fatalf("trace id %x, raw bytes say %x", c.TraceID, got)
		}
		re, err := ReadTraceContext(FromBytes(encodeCtx(c)))
		if err != nil {
			t.Fatalf("accepted context does not re-decode: %v", err)
		}
		if re != c {
			t.Fatalf("re-decode mismatch: %+v != %+v", re, c)
		}
	})
}
