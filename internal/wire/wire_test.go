package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	m := NewMessage(64)
	m.AppendByte(0xAB)
	m.AppendBool(true)
	m.AppendBool(false)
	m.AppendInt32(-12345)
	m.AppendInt64(1 << 40)
	m.AppendFloat64(3.14159)
	m.AppendString("hello, RMI")
	m.AppendBytes([]byte{1, 2, 3})

	r := FromBytes(m.Bytes())
	if r.ReadU8() != 0xAB || !r.ReadBool() || r.ReadBool() {
		t.Fatal("byte/bool round trip")
	}
	if r.ReadInt32() != -12345 || r.ReadInt64() != 1<<40 {
		t.Fatal("int round trip")
	}
	if r.ReadFloat64() != 3.14159 {
		t.Fatal("float round trip")
	}
	if r.ReadString() != "hello, RMI" {
		t.Fatal("string round trip")
	}
	if !bytes.Equal(r.ReadBytes(), []byte{1, 2, 3}) {
		t.Fatal("bytes round trip")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestSliceRoundTripProperty(t *testing.T) {
	f := func(ds []float64, is []int64, s string) bool {
		m := NewMessage(0)
		m.AppendFloat64Slice(ds)
		m.AppendInt64Slice(is)
		m.AppendString(s)
		r := FromBytes(m.Bytes())
		gd := r.ReadFloat64Slice()
		gi := r.ReadInt64Slice()
		gs := r.ReadString()
		if r.Err() != nil || len(gd) != len(ds) || len(gi) != len(is) || gs != s {
			return false
		}
		for i := range ds {
			if gd[i] != ds[i] && !(math.IsNaN(gd[i]) && math.IsNaN(ds[i])) {
				return false
			}
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFloat64SliceIntoReuse(t *testing.T) {
	m := NewMessage(0)
	m.AppendFloat64Slice([]float64{1, 2, 3})
	dst := make([]float64, 3)
	r := FromBytes(m.Bytes())
	got, reused := r.ReadFloat64SliceInto(dst)
	if !reused || &got[0] != &dst[0] {
		t.Fatal("matching-length destination not reused")
	}
	// Mismatched length must allocate fresh storage.
	r = FromBytes(m.Bytes())
	got, reused = r.ReadFloat64SliceInto(make([]float64, 5))
	if reused || len(got) != 3 {
		t.Fatal("mismatched-length destination incorrectly reused")
	}
}

func TestReadInt64SliceIntoReuse(t *testing.T) {
	m := NewMessage(0)
	m.AppendInt64Slice([]int64{7, 8})
	dst := make([]int64, 2)
	r := FromBytes(m.Bytes())
	got, reused := r.ReadInt64SliceInto(dst)
	if !reused || got[1] != 8 {
		t.Fatal("int reuse failed")
	}
}

func TestShortReadsAreSticky(t *testing.T) {
	r := FromBytes([]byte{1, 2})
	_ = r.ReadInt64()
	if !errors.Is(r.Err(), ErrShortMessage) {
		t.Fatalf("want ErrShortMessage, got %v", r.Err())
	}
	// Subsequent reads return zero values without panicking.
	if r.ReadInt32() != 0 || r.ReadString() != "" || r.ReadFloat64Slice() != nil {
		t.Fatal("reads after error not zero")
	}
}

func TestNegativeLengthRejected(t *testing.T) {
	m := NewMessage(0)
	m.AppendInt32(-5)
	r := FromBytes(m.Bytes())
	if s := r.ReadString(); s != "" || r.Err() == nil {
		t.Fatalf("negative length accepted: %q err=%v", s, r.Err())
	}
}

func TestResetAndRewind(t *testing.T) {
	m := NewMessage(0)
	m.AppendInt32(42)
	if m.ReadInt32() != 42 {
		t.Fatal("read after write")
	}
	m.Rewind()
	if m.ReadInt32() != 42 {
		t.Fatal("rewind failed")
	}
	m.Reset()
	if m.Len() != 0 || m.Remaining() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xCC}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(p))
		}
	}
}

func TestFrameLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted on write")
	}
	// Corrupt length prefix.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted on read")
	}
}

func BenchmarkAppendFloat64Slice(b *testing.B) {
	data := make([]float64, 256)
	m := NewMessage(8 * 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Reset()
		m.AppendFloat64Slice(data)
	}
}
